"""Command-line interface: ``python -m repro <command> ...``.

Commands:

- ``evaluate PROGRAM DB [--query Q]`` — run a program over a database.
- ``explain PROGRAM [DB]`` — show the join plans (or compiled kernels)
  every rule would run with; ``--stats`` adds selectivity estimates and
  per-relation statistics.
- ``optimize PROGRAM --ics ICS`` — print the optimization report and the
  transformed program.
- ``residues PROGRAM --ics ICS`` — print the residues of Algorithm 3.1.
- ``describe PROGRAM "describe ... where ..."`` — intelligent answering.
- ``lint PROGRAM [--ics F] [--query Q]`` — static analysis: check the
  paper's assumptions and the engine preconditions, with stable codes
  and source spans; ``--bundled`` lints every shipped workload.
- ``serve PROGRAM DB --query Q [--update F ...]`` — materialize the
  program once, answer the query, then apply each changeset file and
  re-answer from the incrementally maintained view; ``--concurrent``
  runs the same session through the threaded serving tier
  (``--readers``/``--writers``).
- ``bench-serving`` — concurrent serving under load and chaos faults;
  writes ``BENCH_serving.json`` (p50/p99 latency, QPS, stale-read
  ratio, error rate).
- ``update DB CHANGESET [...]`` — apply changeset files (``+fact.`` /
  ``-fact.`` statements) to a database and print/write the result.
- ``experiments [IDS ...]`` — run the reproduction experiments.
- ``shell`` — interactive Datalog shell (rules, facts, ICs, queries).
- ``examples [NAME]`` — list or show the paper's worked examples.

Programs, databases and ICs are read from files in the library's
Prolog-like syntax (``-`` reads stdin).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import optimize_rule_level
from .bench.experiments import ALL_EXPERIMENTS
from .constraints import ics_from_text
from .core import SemanticOptimizer, generate_residues, rule_level_residues
from .datalog import format_program, parse_program
from .errors import BudgetExceededError, ParseError, ReproError
from .engine import evaluate
from .facts import Database
from .iqa import describe as iqa_describe
from .iqa import parse_describe
from .runtime import Budget
from .workloads import ALL_EXAMPLES, load

#: Distinct exit codes for scripting (`repro ... || handle $?`); each
#: failure prints a diagnostic (with a caret-annotated source excerpt
#: for parse errors) to stderr, never a traceback.
EXIT_ERROR = 2          # generic library failure / missing file
EXIT_PARSE = 3          # ParseError: malformed program/IC/database text
EXIT_BUDGET = 4         # BudgetExceededError: deadline or limit hit
EXIT_LINT = 5           # lint found error-severity diagnostics


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_program(args: argparse.Namespace):
    """Parse a program and enforce the evaluation preconditions.

    The checks are the error-severity analysis passes (the same ones
    ``repro lint`` runs), so a program the CLI rejects here is exactly a
    program ``lint`` reports errors for — with the same messages.
    """
    from .analysis import PRECONDITION_PASSES, analyze_program

    source = _read(args.program)
    program = parse_program(source)
    report = analyze_program(program, source=source,
                             names=PRECONDITION_PASSES)
    if report.has_errors:
        details = "; ".join(
            f"{d.code}[{d.rule_label or d.subject or '-'}]: {d.message}"
            for d in report.errors)
        raise ReproError(f"invalid program: {details}")
    return program


def _load_ics(args: argparse.Namespace):
    return ics_from_text(_read(args.ics))


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _budget_from_args(args: argparse.Namespace) -> Budget | None:
    """A :class:`Budget` from ``--timeout-s``/``--max-*`` flags, if any."""
    limits = (getattr(args, "timeout_s", None),
              getattr(args, "max_derivations", None),
              getattr(args, "max_facts", None))
    if all(value is None for value in limits):
        return None
    return Budget(timeout_s=limits[0], max_derivations=limits[1],
                  max_facts=limits[2])


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout-s", type=float, metavar="S",
                        help="wall-clock deadline in seconds")
    parser.add_argument("--max-derivations", type=int, metavar="N",
                        help="abort after N derivation events")
    parser.add_argument("--max-facts", type=int, metavar="N",
                        help="abort after N materialized facts")


def _evaluate_cbo(args: argparse.Namespace, program, db: Database) -> int:
    """``evaluate --planner cbo --query Q``: enumerate the rewrite space
    (magic per adornment, residue pushing, linearization, fusion), run
    the cheapest candidate, and answer the query from whatever shape the
    chosen plan materialized.  ``--stats`` appends the candidate table.
    """
    from .datalog.atoms import Atom
    from .datalog.parser import parse_query
    from .engine.optimizer import cbo_evaluate
    from .engine.seminaive import answers as solve_literals

    literals = parse_query(args.query).literals
    idb_preds = program.idb_predicates
    idb_atoms = [lit for lit in literals
                 if isinstance(lit, Atom) and lit.pred in idb_preds]
    # Magic specializes exactly one IDB predicate; a query touching
    # several keeps the identity/linearize/fuse space only.
    seed = idb_atoms[0] if len(idb_atoms) == 1 else None
    result = cbo_evaluate(program, db, query=seed,
                          budget=_budget_from_args(args),
                          executor=args.executor,
                          interning=args.interning,
                          shards=args.shards,
                          parallel_mode=args.parallel_mode)
    if result.magic is not None:
        from .datalog.terms import Constant

        assert seed is not None
        filtered = [row for row in result.magic.answers(result.idb)
                    if all(arg.value == value
                           for value, arg in zip(row, seed.args)
                           if isinstance(arg, Constant))]
        overlay = Database()
        overlay.ensure(seed.pred, seed.arity).add_all(filtered)
        out_rows = solve_literals(literals, program, db, overlay,
                                  result.stats)
    else:
        out_rows = result.query(literals)
    _print_query_rows(out_rows)
    if args.stats:
        assert result.choice is not None
        print(result.choice.describe(), file=sys.stderr)
        for key, value in result.stats.as_dict().items():
            print(f"# {key}: {value}", file=sys.stderr)
        print(f"# elapsed: {result.elapsed_seconds * 1000:.2f}ms",
              file=sys.stderr)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    program = _load_program(args)
    db = Database.from_text(_read(args.database))
    if args.planner == "cbo" and args.query:
        return _evaluate_cbo(args, program, db)
    result = evaluate(program, db, method=args.method,
                      planner=args.planner,
                      budget=_budget_from_args(args),
                      executor=args.executor,
                      interning=args.interning,
                      shards=args.shards,
                      parallel_mode=args.parallel_mode,
                      dataflow=args.dataflow)
    if args.query:
        for row in sorted(result.query(args.query), key=str):
            print("\t".join(str(v) for v in row))
    else:
        for pred in sorted(program.idb_predicates):
            for row in sorted(result.facts(pred), key=str):
                args_text = ", ".join(repr(v) if isinstance(v, str)
                                      and not v.isidentifier() else str(v)
                                      for v in row)
                print(f"{pred}({args_text}).")
    if args.stats:
        for key, value in result.stats.as_dict().items():
            print(f"# {key}: {value}", file=sys.stderr)
        print(f"# elapsed: {result.elapsed_seconds * 1000:.2f}ms",
              file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .engine import explain_kernels, explain_plan

    program = _load_program(args)
    db = Database.from_text(_read(args.database)) if args.database \
        else Database()
    flow = None
    if args.dataflow:
        # Analyze in the value domain, before any interning re-encode
        # (same order the engine uses).
        from .analysis.dataflow import analyze_dataflow
        from .datalog.atoms import Atom
        from .datalog.parser import parse_query

        query = None
        if args.query:
            query = next((lit for lit
                          in parse_query(args.query).literals
                          if isinstance(lit, Atom)), None)
        flow = analyze_dataflow(program,
                                edb=db if args.database else None,
                                query=query)
        print(flow.render())
        print()
    if args.interning == "on":
        db = db.interned()
    if args.kernels:
        print(explain_kernels(program, db, planner=args.planner,
                              show_stats=args.stats,
                              executor=args.executor,
                              shards=args.shards,
                              dataflow=flow))
    else:
        print(explain_plan(program, db, planner=args.planner,
                           show_stats=args.stats,
                           dataflow=flow))
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args)
    ics = _load_ics(args)
    if args.rule_level:
        report = optimize_rule_level(
            program, ics, pred=args.pred,
            small_relations=set(args.small or ()))
    else:
        optimizer = SemanticOptimizer(
            program, ics, pred=args.pred, guard=args.guard,
            compilation=args.compilation,
            small_relations=set(args.small or ()))
        if args.safe or args.verify != "none":
            report = optimizer.optimize_safe(
                budget=_budget_from_args(args), verify=args.verify)
        else:
            report = optimizer.optimize()
    print(report.summary())
    print()
    print(format_program(report.optimized, group_by_head=True))
    return 0 if report.changed or args.allow_unchanged else 1


def cmd_residues(args: argparse.Namespace) -> int:
    program = _load_program(args)
    ics = _load_ics(args)
    optimizer = SemanticOptimizer(program, ics, pred=args.pred)
    for ic in ics:
        print(f"{ic}")
        printed = False
        if ic.is_chain() and ic.is_edb_only(program):
            for item in generate_residues(program, optimizer.pred, ic):
                print(f"  {item}")
                printed = True
        for item in rule_level_residues(program, ic):
            if len(item.sequence) == 1:
                print(f"  {item}")
                printed = True
        if not printed:
            print("  (no residues)")
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    program = _load_program(args)
    query = parse_describe(args.query)
    result = iqa_describe(program, query)
    print(result.summary())
    return 0


def _lint_bundled(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .analysis import bundled_reports

    examples_dir = args.examples_dir
    if examples_dir is None:
        candidate = pathlib.Path(__file__).resolve().parents[2] / "examples"
        examples_dir = candidate if candidate.is_dir() else None
    failed = False
    lines: list[str] = []
    payload: list[dict] = []
    pairs: list[tuple] = []
    for target, report in bundled_reports(examples_dir=examples_dir):
        failed = failed or report.has_errors
        pairs.append((target.name, report))
        if args.format == "json":
            payload.append({"target": target.name, **report.to_dict()})
        else:
            lines.append(f"{target.name}: {report.summary()}")
            lines.extend("  " + e.render() for e in report.errors)
    if args.format == "sarif":
        from .analysis import render_sarif

        text = render_sarif(pairs)
    elif args.format == "json":
        text = json.dumps({"targets": payload,
                           "ok": not failed}, indent=2)
    else:
        verdict = "FAIL: bundled programs have lint errors" if failed \
            else "ok: no bundled program has lint errors"
        text = "\n".join([*lines, verdict])
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return EXIT_LINT if failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .analysis import REGISTRY, lint_source

    if args.passes is not None:
        if not args.passes:
            raise ReproError(
                "--passes needs at least one pass name; available: "
                + ", ".join(sorted(REGISTRY)))
        for name in args.passes:
            if name not in REGISTRY:
                import difflib

                close = difflib.get_close_matches(
                    name, list(REGISTRY), n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise ReproError(
                    f"unknown analysis pass {name!r}{hint}")
    if args.bundled:
        return _lint_bundled(args)
    if not args.program:
        raise ReproError("lint needs a PROGRAM file (or --bundled)")
    report = lint_source(_read(args.program),
                         ic_text=_read(args.ics) if args.ics else None,
                         query_text=args.query,
                         names=args.passes)
    if args.format == "sarif":
        from .analysis import render_sarif

        source_name = "<stdin>" if args.program == "-" else args.program
        text = render_sarif([(source_name, report)])
    elif args.format == "json":
        text = json.dumps(report.to_dict(), indent=2)
    else:
        text = report.render()
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return EXIT_LINT if report.has_errors else 0


def cmd_experiments(args: argparse.Namespace) -> int:
    wanted = [name.upper() for name in (args.ids or ALL_EXPERIMENTS)]
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiments {unknown}; choose from "
            f"{sorted(ALL_EXPERIMENTS)}")
    for name in wanted:
        table = ALL_EXPERIMENTS[name]()
        table.show()
        if args.csv_dir:
            import pathlib

            directory = pathlib.Path(args.csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            table.to_csv(directory / f"{name}.csv")
    return 0


def cmd_bench_engine(args: argparse.Namespace) -> int:
    from .bench.engine_bench import (regression_failures,
                                     run_engine_benchmark,
                                     write_engine_benchmark)

    report = run_engine_benchmark(scale=args.scale, repeats=args.repeats,
                                  timeout_s=args.timeout_s,
                                  seed=args.seed,
                                  focus_executor=args.focus_executor,
                                  profile=args.profile)
    write_engine_benchmark(report, args.out)
    focus = f", focus={args.focus_executor}" if args.focus_executor \
        else ""
    print(f"wrote {args.out} (scale={args.scale}, "
          f"repeats={args.repeats}, seed={args.seed}{focus})")
    for workload in report["workloads"]:
        methods = workload.get("methods", {})
        parts = []
        for method in ("naive", "seminaive", "magic"):
            speedup = methods.get(method, {}).get("speedup")
            if speedup is not None:
                parts.append(f"{method} {speedup:.2f}x")
        interned = workload.get("interned_speedup")
        if interned is not None:
            parts.append(f"interned+adaptive {interned:.2f}x")
        parallel = workload.get("parallel_speedup")
        if parallel is not None:
            parts.append(f"parallel {parallel:.2f}x")
        vectorized = workload.get("vectorized_speedup")
        if vectorized is not None:
            parts.append(f"vectorized {vectorized:.2f}x")
        agreement = workload["agreement"]
        ok = agreement.get("methods_agree", True) \
            and agreement.get("executors_agree", True) \
            and agreement.get("configs_agree", True)
        print(f"  {workload['name']:20} speedups: "
              f"{', '.join(parts) or 'n/a'}  "
              f"agreement: {'ok' if ok else 'MISMATCH'}")
    if args.check:
        failures = regression_failures(
            report, max_slowdown=args.max_slowdown,
            min_interned_speedup=args.min_interned_speedup,
            min_parallel_speedup=args.min_parallel_speedup,
            min_vectorized_speedup=args.min_vectorized_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate: ok")
    return 0


def cmd_bench_optimizer(args: argparse.Namespace) -> int:
    from .bench.optimizer_bench import (regression_failures,
                                        run_optimizer_benchmark,
                                        write_optimizer_benchmark)

    report = run_optimizer_benchmark(scale=args.scale,
                                     repeats=args.repeats,
                                     timeout_s=args.timeout_s,
                                     seed=args.seed)
    write_optimizer_benchmark(report, args.out)
    print(f"wrote {args.out} (scale={args.scale}, "
          f"repeats={args.repeats}, seed={args.seed})")
    for workload in report["workloads"]:
        chosen = workload["chosen"]
        speedup = workload.get("speedup")
        agree = workload["agreement"]["answers_agree"]
        print(f"  {workload['name']:12} chose {chosen['label']:24} "
              f"enum {workload['enumeration_ms']:6.1f}ms  "
              f"vs adaptive "
              + (f"{speedup:.2f}x" if speedup is not None else "n/a")
              + f"  agreement: {'ok' if agree else 'MISMATCH'}")
    if args.check:
        failures = regression_failures(
            report, min_cbo_speedup=args.min_cbo_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate: ok")
    return 0


def _print_query_rows(rows) -> None:
    for row in sorted(rows, key=str):
        print("\t".join(str(v) for v in row))


def _serve_concurrent(args: argparse.Namespace, program,
                      db: Database) -> int:
    """``serve --concurrent``: the same query/update session, but run
    as a mixed workload — ``--readers`` reader threads answer the query
    from MVCC snapshots while ``--writers`` client threads submit the
    changeset files through the write pipeline.  The final answer is
    read back at ``max_lag=0`` after a flush, so it is exactly what the
    serial path would print.
    """
    import json
    import threading

    from .errors import ServingUnavailable
    from .facts.changelog import Changeset
    from .serving import StalenessBound, ThreadedServer

    changesets = [Changeset.from_text(_read(path))
                  for path in args.update or ()]
    server = ThreadedServer(db=db, max_readers=args.readers + 1)
    stop = threading.Event()
    counters = {"reads": 0, "stale": 0, "rejected": 0}
    lock = threading.Lock()

    def reader_loop() -> None:
        while not stop.is_set():
            try:
                result = server.read(program, args.query,
                                     planner=args.planner,
                                     executor=args.executor,
                                     deadline_s=1.0)
            except ServingUnavailable:
                with lock:
                    counters["rejected"] += 1
                continue
            with lock:
                counters["reads"] += 1
                if result.stale:
                    counters["stale"] += 1

    def writer_loop(batch: list[Changeset]) -> None:
        for changeset in batch:
            try:
                server.update(changeset, timeout_s=1.0)
            except ServingUnavailable:
                with lock:
                    counters["rejected"] += 1

    with server:
        server.read(program, args.query, planner=args.planner,
                    executor=args.executor)
        writers = max(1, args.writers)
        batches: list[list[Changeset]] = [[] for _ in range(writers)]
        for index, changeset in enumerate(changesets):
            batches[index % writers].append(changeset)
        threads = [threading.Thread(target=reader_loop, daemon=True)
                   for _ in range(args.readers)]
        threads += [threading.Thread(target=writer_loop, args=(batch,),
                                     daemon=True)
                    for batch in batches if batch]
        for thread in threads:
            thread.start()
        for thread in threads[args.readers:]:
            thread.join()
        server.flush()
        stop.set()
        for thread in threads[:args.readers]:
            thread.join(timeout=5.0)
        result = server.read(program, args.query, planner=args.planner,
                             executor=args.executor,
                             staleness=StalenessBound(max_lag=0))
        _print_query_rows(result.rows)
        print(f"# v{result.version}: {args.readers} readers / "
              f"{writers} writers, {counters['reads']} background "
              f"reads ({counters['stale']} stale, "
              f"{counters['rejected']} rejected), "
              f"health {server.health}", file=sys.stderr)
        if args.describe:
            print(json.dumps(server.describe(), indent=2),
                  file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .facts.changelog import Changeset
    from .incremental import Server

    program = _load_program(args)
    db = Database.from_text(_read(args.database))
    if args.interning == "on":
        db = db.interned()
    if args.concurrent:
        return _serve_concurrent(args, program, db)
    server = Server(db)
    budget = _budget_from_args(args)
    view = server.view(program, planner=args.planner,
                       executor=args.executor)
    _print_query_rows(server.serve(program, args.query,
                                   planner=args.planner,
                                   executor=args.executor,
                                   budget=budget))
    print(f"# v{server.version}: {view.last_mode} "
          f"({(view.last_refresh_s or 0) * 1000:.2f}ms, "
          f"{view.idb.total_facts()} IDB facts)", file=sys.stderr)
    for path in args.update or ():
        changeset = Changeset.from_text(_read(path))
        server.apply(changeset)
        print(f"-- {path}")
        _print_query_rows(server.serve(program, args.query,
                                       planner=args.planner,
                                       executor=args.executor,
                                       budget=budget))
        print(f"# v{server.version}: +{changeset.total_inserts()}"
              f"/-{changeset.total_deletes()} -> {view.last_mode} "
              f"({(view.last_refresh_s or 0) * 1000:.2f}ms, "
              f"{view.idb.total_facts()} IDB facts)", file=sys.stderr)
    if args.describe:
        import json

        print(json.dumps(server.describe(), indent=2), file=sys.stderr)
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    from .facts.changelog import Changeset, VersionedDatabase

    db = Database.from_text(_read(args.database))
    versioned = VersionedDatabase(db)
    for path in args.changesets:
        versioned.apply(Changeset.from_text(_read(path)))
    effective = versioned.changes_since(0)
    text = versioned.db.to_text()
    if text and not text.endswith("\n"):
        text += "\n"
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text, encoding="utf-8")
    else:
        print(text, end="")
    print(f"# v{versioned.version}: +{effective.total_inserts()} "
          f"-{effective.total_deletes()} effective, "
          f"{versioned.db.total_facts()} facts", file=sys.stderr)
    return 0


def cmd_bench_incremental(args: argparse.Namespace) -> int:
    from .bench.incremental_bench import (regression_failures,
                                          run_incremental_benchmark,
                                          write_incremental_benchmark)

    report = run_incremental_benchmark(
        scale=args.scale, repeats=args.repeats,
        timeout_s=args.timeout_s, seed=args.seed,
        fraction=args.fraction)
    write_incremental_benchmark(report, args.out)
    print(f"wrote {args.out} (scale={args.scale}, "
          f"repeats={args.repeats}, seed={args.seed})")
    for block in report["workloads"]:
        parts = []
        for mode in ("insert", "delete"):
            entry = block[mode]
            speedup = entry.get("speedup")
            agree = entry.get("fingerprints_agree")
            if speedup is not None:
                parts.append(
                    f"{mode} {speedup:.2f}x"
                    f"{'' if agree else ' MISMATCH'}")
            elif entry.get("budget_exceeded"):
                parts.append(f"{mode} BUDGET")
        print(f"  {block['name']:20} maintenance vs recompute: "
              f"{', '.join(parts) or 'n/a'}")
    if args.check:
        failures = regression_failures(
            report, min_insert_speedup=args.min_insert_speedup,
            min_delete_speedup=args.min_delete_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate: ok")
    return 0


def cmd_bench_serving(args: argparse.Namespace) -> int:
    from .bench.serving_bench import (regression_failures,
                                      run_serving_benchmark,
                                      write_serving_benchmark)

    report = run_serving_benchmark(duration_s=args.duration_s,
                                   readers=args.readers,
                                   seed=args.seed,
                                   chaos=not args.no_chaos)
    write_serving_benchmark(report, args.out)
    print(f"wrote {args.out} (duration={args.duration_s}s, "
          f"readers={args.readers}, seed={args.seed})")
    for mode in report["modes"]:
        agree = "ok" if mode["fingerprints_agree"] else "MISMATCH"
        print(f"  {mode['mode']:8} qps={mode['qps']:.0f}  "
              f"p50={mode['latency_p50_ms']:.2f}ms  "
              f"p99={mode['latency_p99_ms']:.2f}ms  "
              f"stale={mode['stale_read_ratio']:.1%}  "
              f"errors={mode['error_rate']:.1%}  "
              f"health={mode['final_health']}  fingerprints: {agree}")
    if args.check:
        failures = regression_failures(report)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate: ok")
    return 0


def cmd_examples(args: argparse.Namespace) -> int:
    if args.name:
        example = load(args.name)
        print(f"# {example.name}: {example.notes}")
        print(format_program(example.program))
        for ic in example.ics:
            print(ic)
        return 0
    for factory in ALL_EXAMPLES:
        example = factory()
        print(f"{example.name:14} pred={example.pred:8} {example.notes}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic optimization of recursive queries "
                    "(Lakshmanan & Missaoui, ICDE 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="evaluate a program")
    p_eval.add_argument("program")
    p_eval.add_argument("database")
    p_eval.add_argument("--query", help="conjunctive query to answer")
    p_eval.add_argument("--method", default="seminaive",
                        choices=["seminaive", "naive"])
    p_eval.add_argument("--planner", default="greedy",
                        choices=["greedy", "adaptive", "source", "cbo"],
                        help="join order: boundness+size (greedy), "
                             "statistics-driven with replanning "
                             "(adaptive), rule order (source), or the "
                             "cost-based enumerating optimizer (cbo; "
                             "with --query it also enumerates magic/"
                             "residue/linearization/fusion rewrites "
                             "and runs the cheapest)")
    p_eval.add_argument("--executor", default="compiled",
                        choices=["compiled", "interpreted", "parallel",
                                 "vectorized"],
                        help="compiled slot-based kernels (default), "
                             "the reference interpreter, sharded "
                             "parallel execution of the compiled "
                             "kernels, or columnar whole-frontier "
                             "batch kernels (vectorized; pair with "
                             "--interning on)")
    p_eval.add_argument("--shards", type=int, default=None, metavar="N",
                        help="with --executor parallel, hash-partition "
                             "each delta into N shards (default 4)")
    p_eval.add_argument("--parallel-mode", default="auto",
                        choices=["auto", "serial", "thread", "fork"],
                        help="with --executor parallel, how shard "
                             "firings run: in-process (serial), thread "
                             "pool, persistent fork workers, or "
                             "size-based choice (auto, default)")
    p_eval.add_argument("--interning", default="off",
                        choices=["on", "off"],
                        help="intern constants to dense ints and join "
                             "over codes (on) or evaluate values as-is "
                             "(off, default)")
    p_eval.add_argument("--dataflow", default="off",
                        choices=["on", "off"],
                        help="run the static dataflow analysis first "
                             "and feed it into evaluation: dead-rule "
                             "pruning, provably-true check elision in "
                             "batch kernels, and cold-start size "
                             "bounds for the adaptive planner (same "
                             "answers and counters either way)")
    p_eval.add_argument("--stats", action="store_true",
                        help="print counters to stderr")
    _add_budget_flags(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_explain = sub.add_parser(
        "explain", help="show join plans / compiled kernels")
    p_explain.add_argument("program")
    p_explain.add_argument("database", nargs="?",
                           help="facts file (optional; sizes read 0 "
                                "without it)")
    p_explain.add_argument("--planner", default="greedy",
                           choices=["greedy", "adaptive", "source",
                                    "cbo"])
    p_explain.add_argument("--kernels", action="store_true",
                           help="show the compiled step programs "
                                "instead of the planner view")
    p_explain.add_argument("--executor", default="compiled",
                           choices=["compiled", "parallel",
                                    "vectorized"],
                           help="with --kernels, 'parallel' appends the "
                                "sharded-execution view (shard count, "
                                "anchor partition key, kernel reuse); "
                                "'vectorized' appends the batch "
                                "lowering per rule")
    p_explain.add_argument("--shards", type=int, default=None,
                           metavar="N",
                           help="shard count for --executor parallel "
                                "(default 4)")
    p_explain.add_argument("--interning", default="off",
                           choices=["on", "off"],
                           help="explain against interned storage")
    p_explain.add_argument("--stats", action="store_true",
                           help="include selectivity estimates' source "
                                "statistics (cardinality, distinct "
                                "counts, epoch) per relation")
    p_explain.add_argument("--dataflow", action="store_true",
                           help="run the static dataflow analysis and "
                                "print the inferred column domains, "
                                "binding-pattern adornments and size "
                                "bounds per predicate; adaptive cost "
                                "estimates then seed cold relations "
                                "from the static bounds")
    p_explain.add_argument("--query", metavar="Q",
                           help="with --dataflow, query atom seeding "
                                "the binding-pattern analysis")
    p_explain.set_defaults(func=cmd_explain)

    p_opt = sub.add_parser("optimize", help="push IC residues")
    p_opt.add_argument("program")
    p_opt.add_argument("--ics", required=True)
    p_opt.add_argument("--pred", help="recursive predicate (inferred "
                                      "when unique)")
    p_opt.add_argument("--guard", default="chase",
                       choices=["chase", "none"])
    p_opt.add_argument("--compilation", default="periodic",
                       choices=["periodic", "automaton"])
    p_opt.add_argument("--small", nargs="*",
                       help="relations worth introducing as reducers")
    p_opt.add_argument("--rule-level", action="store_true",
                       help="use the rule-level baseline instead")
    p_opt.add_argument("--allow-unchanged", action="store_true",
                       help="exit 0 even when nothing was pushed")
    p_opt.add_argument("--safe", action="store_true",
                       help="guarded pipeline: degrade on stage failure "
                            "instead of aborting")
    p_opt.add_argument("--verify", default="none",
                       choices=["none", "sample"],
                       help="spot-check optimized vs. source answers on "
                            "sampled databases (implies --safe)")
    _add_budget_flags(p_opt)
    p_opt.set_defaults(func=cmd_optimize)

    p_res = sub.add_parser("residues", help="show Algorithm 3.1 residues")
    p_res.add_argument("program")
    p_res.add_argument("--ics", required=True)
    p_res.add_argument("--pred")
    p_res.set_defaults(func=cmd_residues)

    p_desc = sub.add_parser("describe", help="intelligent query answering")
    p_desc.add_argument("program")
    p_desc.add_argument("query",
                        help='e.g. "describe honors(S) where ..."')
    p_desc.set_defaults(func=cmd_describe)

    p_lint = sub.add_parser(
        "lint", help="static analysis with stable diagnostic codes")
    p_lint.add_argument("program", nargs="?",
                        help="program file (may mix rules, ICs and a "
                             "query; - reads stdin)")
    p_lint.add_argument("--ics", help="integrity constraints file")
    p_lint.add_argument("--query",
                        help="query atom enabling the reachability and "
                             "residue-usefulness passes")
    p_lint.add_argument("--format", default="text",
                        choices=["text", "json", "sarif"],
                        help="plain text (default), the report's JSON "
                             "dict, or SARIF 2.1.0 for code-scanning "
                             "upload")
    p_lint.add_argument("--out",
                        help="write the report to this file instead of "
                             "stdout")
    p_lint.add_argument("--passes", nargs="*", metavar="PASS",
                        help="run only the named passes")
    p_lint.add_argument("--bundled", action="store_true",
                        help="lint every bundled workload and examples/ "
                             "program instead of a file")
    p_lint.add_argument("--examples-dir",
                        help="with --bundled, where to find the "
                             "examples/ scripts (default: auto-detect)")
    p_lint.set_defaults(func=cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="answer a query from an incrementally maintained view")
    p_serve.add_argument("program")
    p_serve.add_argument("database")
    p_serve.add_argument("--query", required=True,
                         help="conjunctive query to answer")
    p_serve.add_argument("--update", action="append", metavar="FILE",
                         help="changeset file (+fact. / -fact. "
                              "statements) to apply; repeatable, the "
                              "query is re-answered after each")
    p_serve.add_argument("--planner", default="greedy",
                         choices=["greedy", "adaptive", "source",
                                  "cbo"])
    p_serve.add_argument("--executor", default="compiled",
                         choices=["compiled", "interpreted",
                                  "parallel", "vectorized"])
    p_serve.add_argument("--interning", default="off",
                         choices=["on", "off"])
    p_serve.add_argument("--describe", action="store_true",
                         help="print the server state as JSON to stderr")
    p_serve.add_argument("--concurrent", action="store_true",
                         help="serve through the threaded tier: reader "
                              "threads answer from MVCC snapshots while "
                              "writer clients stream the --update files "
                              "through the write pipeline")
    p_serve.add_argument("--readers", type=int, default=4, metavar="N",
                         help="with --concurrent, background reader "
                              "threads (default 4)")
    p_serve.add_argument("--writers", type=int, default=1, metavar="N",
                         help="with --concurrent, writer client threads "
                              "the --update files are spread over "
                              "(default 1)")
    _add_budget_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_update = sub.add_parser(
        "update", help="apply changeset files to a database")
    p_update.add_argument("database")
    p_update.add_argument("changesets", nargs="+", metavar="CHANGESET",
                          help="changeset files, applied in order")
    p_update.add_argument("--out",
                          help="write the updated database here "
                               "(default: stdout)")
    p_update.set_defaults(func=cmd_update)

    p_binc = sub.add_parser(
        "bench-incremental",
        help="maintenance vs recompute: BENCH_incremental.json")
    p_binc.add_argument("--out", default="BENCH_incremental.json",
                        help="report path "
                             "(default BENCH_incremental.json)")
    p_binc.add_argument("--scale", default="default",
                        choices=["smoke", "default", "large"])
    p_binc.add_argument("--repeats", type=int, default=3)
    p_binc.add_argument("--timeout-s", type=float, default=120.0,
                        help="per-run deadline in seconds")
    p_binc.add_argument("--fraction", type=float, default=0.01,
                        help="EDB fraction changed per batch "
                             "(default 0.01)")
    p_binc.add_argument("--seed", type=int, default=7,
                        help="RNG seed for EDBs and changesets")
    p_binc.add_argument("--check", action="store_true",
                        help="exit 1 when speedups fall below the "
                             "thresholds, fingerprints disagree, or "
                             "repeats are too few for stable medians")
    p_binc.add_argument("--min-insert-speedup", type=float, default=None,
                        metavar="X",
                        help="with --check, require insert maintenance "
                             "to be at least X times faster than "
                             "recomputation on transitive closure")
    p_binc.add_argument("--min-delete-speedup", type=float, default=None,
                        metavar="X",
                        help="with --check, require delete maintenance "
                             "(DRed) to be at least X times faster than "
                             "recomputation on transitive closure")
    p_binc.set_defaults(func=cmd_bench_incremental)

    p_bsrv = sub.add_parser(
        "bench-serving",
        help="concurrent serving under load (and chaos): "
             "BENCH_serving.json")
    p_bsrv.add_argument("--out", default="BENCH_serving.json",
                        help="report path (default BENCH_serving.json)")
    p_bsrv.add_argument("--duration-s", type=float, default=2.0,
                        help="measured run length per mode "
                             "(default 2.0)")
    p_bsrv.add_argument("--readers", type=int, default=4,
                        help="concurrent reader threads (default 4)")
    p_bsrv.add_argument("--seed", type=int, default=7,
                        help="RNG seed for the EDB and update stream")
    p_bsrv.add_argument("--no-chaos", action="store_true",
                        help="skip the fault-injected mode")
    p_bsrv.add_argument("--check", action="store_true",
                        help="exit 1 when reads stall, any unexpected "
                             "error escapes, or fingerprints disagree")
    p_bsrv.set_defaults(func=cmd_bench_serving)

    p_exp = sub.add_parser("experiments",
                           help="run the reproduction experiments")
    p_exp.add_argument("ids", nargs="*",
                       help="E1..E10 (default: all)")
    p_exp.add_argument("--csv-dir",
                       help="also write each table as CSV here")
    p_exp.set_defaults(func=cmd_experiments)

    p_bench = sub.add_parser(
        "bench-engine",
        help="engine baseline: methods x executors, BENCH_engine.json")
    p_bench.add_argument("--out", default="BENCH_engine.json",
                         help="report path (default BENCH_engine.json)")
    p_bench.add_argument("--scale", default="default",
                         choices=["smoke", "default", "large"])
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--timeout-s", type=float, default=120.0,
                         help="per-run deadline in seconds")
    p_bench.add_argument("--check", action="store_true",
                         help="exit 1 on regression: compiled slower "
                              "than allowed, or executors/methods "
                              "disagree")
    p_bench.add_argument("--max-slowdown", type=float, default=1.5,
                         help="allowed compiled/interpreted ratio for "
                              "--check (default 1.5)")
    p_bench.add_argument("--min-interned-speedup", type=float,
                         default=None, metavar="X",
                         help="with --check, require interned+adaptive "
                              "to be at least X times the compiled "
                              "baseline on transitive closure and "
                              "same generation")
    p_bench.add_argument("--min-parallel-speedup", type=float,
                         default=None, metavar="X",
                         help="with --check, require the parallel "
                              "executor to be at least X times the "
                              "single-threaded compiled baseline on "
                              "transitive closure")
    p_bench.add_argument("--min-vectorized-speedup", type=float,
                         default=None, metavar="X",
                         help="with --check, require the vectorized "
                              "executor to be at least X times the "
                              "interned+adaptive compiled baseline on "
                              "transitive closure and same generation")
    p_bench.add_argument("--executor", default=None,
                         choices=["parallel", "vectorized"],
                         dest="focus_executor",
                         help="smoke mode: measure only the baseline "
                              "and this executor's configuration per "
                              "workload (skips the full method grid)")
    p_bench.add_argument("--profile", action="store_true",
                         help="attach a per-kernel wall-time and "
                              "per-round delta-size breakdown to each "
                              "workload in the report")
    p_bench.add_argument("--seed", type=int, default=7,
                         help="RNG seed for the generated EDBs "
                              "(default 7; fixed for reproducibility)")
    p_bench.set_defaults(func=cmd_bench_engine)

    p_bopt = sub.add_parser(
        "bench-optimizer",
        help="cost-based optimizer vs adaptive planner: "
             "BENCH_optimizer.json")
    p_bopt.add_argument("--out", default="BENCH_optimizer.json",
                        help="report path (default BENCH_optimizer.json)")
    p_bopt.add_argument("--scale", default="default",
                        choices=["smoke", "default", "large"])
    p_bopt.add_argument("--repeats", type=int, default=3)
    p_bopt.add_argument("--timeout-s", type=float, default=120.0,
                        help="per-run deadline in seconds")
    p_bopt.add_argument("--seed", type=int, default=7,
                        help="RNG seed for the generated EDBs")
    p_bopt.add_argument("--check", action="store_true",
                        help="exit 1 when answers disagree, enumeration "
                             "exceeds its per-workload budget, or the "
                             "--min-cbo-speedup floor is missed")
    p_bopt.add_argument("--min-cbo-speedup", type=float, default=None,
                        metavar="X",
                        help="with --check, require the optimizer's "
                             "chosen plan to be at least X times faster "
                             "than the adaptive planner (paired "
                             "interleaved best-of) on at least one "
                             "workload where rewrite choice matters")
    p_bopt.set_defaults(func=cmd_bench_optimizer)

    p_shell = sub.add_parser("shell", help="interactive Datalog shell")
    p_shell.set_defaults(func=lambda args: __import__(
        "repro.shell", fromlist=["interactive"]).interactive())

    p_ex = sub.add_parser("examples", help="the paper's worked examples")
    p_ex.add_argument("name", nargs="?",
                      help="e.g. example_4_3 (default: list)")
    p_ex.set_defaults(func=cmd_examples)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return EXIT_PARSE
    except BudgetExceededError as error:
        detail = ""
        if error.last_round is not None:
            detail = f" (completed {error.last_round} rounds"
            if error.stats is not None:
                detail += f", {error.stats.derivations} facts"
            detail += ")"
        print(f"budget exceeded: {error}{detail}", file=sys.stderr)
        return EXIT_BUDGET
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
