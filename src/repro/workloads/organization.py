"""The organizational workload (Example 4.1), scalable and IC-consistent.

Employees form a forest of reporting lines (``boss(E, B, R)``: B is a
boss of E with rank R); ``ic1`` forces every executive-rank boss to be
experienced, which the generator satisfies by construction plus repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..constraints.checker import repair, satisfies
from ..facts.database import Database
from .paper_examples import PaperExample, example_4_1

RANKS = ("executive", "manager", "staff")


@dataclass(frozen=True)
class OrganizationParams:
    """Knobs for the generator."""

    levels: int = 5
    width: int = 12
    executive_fraction: float = 0.3
    experienced_fraction: float = 0.4
    same_level_triples: int = 30


def generate_organization(params: OrganizationParams,
                          rng: random.Random) -> Database:
    """Build an EDB satisfying Example 4.1's ``ic1``."""
    db = Database()
    names = [[f"e{level}_{pos}" for pos in range(params.width)]
             for level in range(params.levels)]

    # Reporting lines: each employee has one boss one level up.
    for level in range(1, params.levels):
        for employee in names[level]:
            boss = rng.choice(names[level - 1])
            rank = "executive" if rng.random() < \
                params.executive_fraction else rng.choice(RANKS[1:])
            db.add_fact("boss", employee, boss, rank)

    for level_names in names:
        for employee in level_names:
            if rng.random() < params.experienced_fraction:
                db.add_fact("experienced", employee)

    for _ in range(params.same_level_triples):
        level = rng.randrange(params.levels)
        trio = [rng.choice(names[level]) for _ in range(3)]
        db.add_fact("same_level", *trio)

    example = example_4_1()
    repair(db, example.ic("ic1"))
    assert satisfies(db, *example.ics)
    return db


def organization_example() -> PaperExample:
    return example_4_1()
