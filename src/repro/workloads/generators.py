"""Generic random-graph EDB generators used by tests and benchmarks."""

from __future__ import annotations

import random
from typing import Sequence

from ..facts.database import Database


def chain_edges(length: int, pred: str = "edge") -> Database:
    """A single path ``n0 -> n1 -> ... -> n<length>``."""
    database = Database()
    for index in range(length):
        database.add_fact(pred, f"n{index}", f"n{index + 1}")
    return database


def tree_edges(depth: int, fanout: int, pred: str = "edge") -> Database:
    """A complete ``fanout``-ary tree of the given depth (edges go
    child -> parent so the root is everyone's ancestor)."""
    database = Database()
    frontier = ["n0"]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                child = f"n{counter}"
                counter += 1
                database.add_fact(pred, child, parent)
                next_frontier.append(child)
        frontier = next_frontier
    return database


def random_digraph(nodes: int, edges: int, rng: random.Random,
                   pred: str = "edge", acyclic: bool = True) -> Database:
    """A random (by default acyclic) directed graph."""
    database = Database()
    added = 0
    attempts = 0
    while added < edges and attempts < edges * 20:
        attempts += 1
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a == b:
            continue
        if acyclic and a >= b:
            a, b = b, a
        if database.add_fact(pred, f"n{a}", f"n{b}"):
            added += 1
    return database


def layered_digraph(layers: int, width: int, fanout: int,
                    rng: random.Random, pred: str = "edge") -> Database:
    """A layered DAG: every node links to ``fanout`` nodes one layer up.

    Recursion depth is exactly ``layers``, which makes derivation counts
    predictable for benchmark sweeps.
    """
    database = Database()
    for layer in range(layers):
        for position in range(width):
            source = f"l{layer}_{position}"
            targets = rng.sample(range(width), min(fanout, width))
            for target in targets:
                database.add_fact(pred, source, f"l{layer + 1}_{target}")
    return database


def unary_subset(database: Database, source_pred: str, column: int,
                 target_pred: str, fraction: float,
                 rng: random.Random) -> None:
    """Populate ``target_pred(x)`` with a random fraction of the values
    in ``source_pred``'s ``column``."""
    values = sorted({row[column] for row in database.facts(source_pred)},
                    key=str)
    for value in values:
        if rng.random() < fraction:
            database.add_fact(target_pred, value)


def transitive_closure_program(pred: str = "edge",
                               closure: str = "reach") -> str:
    """Source text of the canonical left-linear transitive closure."""
    return (f"r0: {closure}(X, Y) :- {pred}(X, Y).\n"
            f"r1: {closure}(X, Y) :- {closure}(X, Z), {pred}(Z, Y).\n")


def random_linear_program(rng: random.Random, edb_preds: int = 2,
                          nodes: int = 12,
                          edges: int = 24) -> tuple[str, Database]:
    """A random linear-recursive program and a matching random EDB.

    Draws a base rule, one or two linear recursive rules (left- or
    right-linear over random EDB predicates), and one derived predicate
    exercising a harder feature — stratified negation, a comparison
    selection, or a constant-anchored probe.  Every program is safe and
    stratified by construction.  Used by the differential fuzz tests:
    the same (program, EDB) pair must produce identical results under
    every executor / planner / interning combination.
    """
    preds = [f"e{index}" for index in range(max(1, edb_preds))]
    database = Database()
    for pred in preds:
        database.merge(random_digraph(nodes, edges, rng, pred=pred))
        database.ensure(pred, 2)
    lines = [f"b0: p(X, Y) :- {rng.choice(preds)}(X, Y)."]
    for number in range(rng.randint(1, 2)):
        step = rng.choice(preds)
        if rng.random() < 0.5:
            lines.append(f"l{number}: p(X, Z) :- p(X, Y), {step}(Y, Z).")
        else:
            lines.append(f"r{number}: p(X, Z) :- {step}(X, Y), p(Y, Z).")
    flavor = rng.randrange(3)
    if flavor == 0:
        guard = rng.choice(preds)
        lines.append(f"q0: q(X, Y) :- p(X, Y), not {guard}(X, Y).")
    elif flavor == 1:
        lines.append("q0: q(X, Y) :- p(X, Y), X < Y.")
    else:
        anchor = f"n{rng.randrange(nodes)}"
        lines.append(f"q0: q(Y) :- p({anchor}, Y).")
    return "\n".join(lines) + "\n", database
