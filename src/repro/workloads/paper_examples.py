"""Every worked example of the paper, verbatim, as reusable fixtures.

Each fixture bundles the program, its integrity constraints and — where
the paper states one — the expansion sequence and residue the example
derives, so tests can assert the reproduction point by point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints.ic import IntegrityConstraint, ics_from_text
from ..datalog.parser import parse_program
from ..datalog.program import Program


@dataclass(frozen=True)
class PaperExample:
    """A worked example: program + ICs + expected artefacts."""

    name: str
    program: Program
    ics: tuple[IntegrityConstraint, ...]
    pred: str
    expected_sequences: tuple[tuple[str, ...], ...] = field(default=())
    notes: str = ""

    def ic(self, label: str) -> IntegrityConstraint:
        for ic in self.ics:
            if ic.label == label:
                return ic
        raise KeyError(label)


def example_2_1() -> PaperExample:
    """Example 2.1/3.1: the abstract chain program.

    The paper's primed variables ``X2', X3', ...`` are written
    ``Y2, Y3, ...``.  The IC maximally subsumes only ``r0 r0 r0``,
    yielding the unconditional fact residue ``-> d(Y5, X6)``.
    """
    program = parse_program("""
        r0: p(X1, X2, X3, X4, X5, X6) :-
                a(X1, X2, X4), b(Y2, X3), c(Y3, Y4, X5), d(Y5, X6),
                p(X1, Y2, Y3, Y4, Y5, Y6).
        r1: p(X1, X2, X3, X4, X5, X6) :- e(X1, X2, X3, X4, X5, X6).
    """)
    ics = tuple(ics_from_text(
        "ic: a(V1, V2, V3), b(V2, V4), c(V4, V5, V6) -> d(V6, V7)."))
    return PaperExample(
        name="example_2_1",
        program=program, ics=ics, pred="p",
        expected_sequences=(("r0", "r0", "r0"),),
        notes="free vs classical residues; maximal subsumption needs "
              "three applications of r0")


def example_3_2() -> PaperExample:
    """Example 3.2/4.2: the university evaluation committee.

    ``ic1`` (expertise propagates along works_with) maximally subsumes
    ``r1 r1``; ``ic2`` attaches the introduction residue
    ``M > 10000 -> doctoral(S)`` to the non-recursive ``r2``.
    """
    program = parse_program("""
        r0: eval(P, S, T) :- super(P, S, T).
        r1: eval(P, S, T) :- works_with(P, P0), eval(P0, S, T),
                             expert(P, F), field(T, F).
        r2: eval_support(P, S, T, M) :- eval(P, S, T), pays(M, G, S, T).
    """, edb_hint=("has", "doctoral"))
    ics = tuple(ics_from_text("""
        ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).
        ic2: pays(M, G, S, T), M > 10000 -> doctoral(S).
    """))
    return PaperExample(
        name="example_3_2",
        program=program, ics=ics, pred="eval",
        expected_sequences=(("r1", "r1"),),
        notes="atom elimination on r1 r1; atom introduction on r2")


def example_4_1() -> PaperExample:
    """Example 4.1: the organizational triples.

    The conditional fact residue ``R = executive -> experienced(U)``
    is useful for ``r2 r2 r2 r2`` (the rank test sits three levels below
    the eliminable atom, exercising the threaded conditional split).
    """
    program = parse_program("""
        r1: triple(E1, E2, E3) :- same_level(E1, E2, E3).
        r2: triple(E1, E2, E3) :- boss(U, E3, R), experienced(U),
                                  triple(U, E1, E2).
    """)
    ics = tuple(ics_from_text(
        "ic1: boss(E, B, R), R = executive -> experienced(B)."))
    return PaperExample(
        name="example_4_1",
        program=program, ics=ics, pred="triple",
        expected_sequences=(("r2", "r2", "r2", "r2"),),
        notes="conditional atom elimination across rule instances")


def example_4_3() -> PaperExample:
    """Example 4.3: genealogy with ages.

    People of 50 or younger have no three generations of descendants, so
    ``Ya <= 50 ->`` prunes the subtrees ``r1 r1 r1`` (and ``r1 r1 r0``).
    """
    program = parse_program("""
        r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
        r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
    """)
    ics = tuple(ics_from_text("""
        ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
             par(Z3, Z3a, Z2, Z2a) -> .
    """))
    return PaperExample(
        name="example_4_3",
        program=program, ics=ics, pred="anc",
        expected_sequences=(("r1", "r1", "r1"), ("r1", "r1", "r0")),
        notes="conditional subtree pruning")


def example_5_1() -> PaperExample:
    """Example 5.1: the honors-students deductive database (IQA)."""
    program = parse_program("""
        r0: honors(Stud) :- transcript(Stud, Major, Cred, Gpa),
                            Cred >= 30, Gpa >= 3.8.
        r1: honors(Stud) :- transcript(Stud, Major, Cred, Gpa),
                            Gpa >= 3.8, exceptional(Stud).
        r2: exceptional(Stud) :- publication(Stud, P), appears(P, Jl),
                                 reputed(Jl).
        r3: honors(Stud) :- graduated(Stud, College), topten(College).
    """, edb_hint=("major", "hobby"))
    return PaperExample(
        name="example_5_1",
        program=program, ics=(), pred="honors",
        notes="intelligent query answering; context subsumes the r3 tree")


ALL_EXAMPLES = (example_2_1, example_3_2, example_4_1, example_4_3,
                example_5_1)


def load(name: str) -> PaperExample:
    """Fetch an example by its function name (e.g. ``example_4_3``)."""
    for factory in ALL_EXAMPLES:
        if factory.__name__ == name:
            return factory()
    raise KeyError(name)
