"""Workloads: paper fixtures and IC-consistent synthetic generators."""

from .paper_examples import (ALL_EXAMPLES, PaperExample, example_2_1,
                             example_3_2, example_4_1, example_4_3,
                             example_5_1, load)
from .generators import (chain_edges, layered_digraph, random_digraph,
                         random_linear_program,
                         transitive_closure_program, tree_edges,
                         unary_subset)
from .university import UniversityParams, generate_university
from .organization import OrganizationParams, generate_organization
from .genealogy import GenealogyParams, generate_genealogy

__all__ = [
    "ALL_EXAMPLES", "PaperExample", "example_2_1", "example_3_2",
    "example_4_1", "example_4_3", "example_5_1", "load",
    "chain_edges", "layered_digraph", "random_digraph",
    "random_linear_program",
    "transitive_closure_program", "tree_edges", "unary_subset",
    "UniversityParams", "generate_university",
    "OrganizationParams", "generate_organization",
    "GenealogyParams", "generate_genealogy",
]
