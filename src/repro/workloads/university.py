"""The university workload (Examples 3.2 / 4.2), scalable and
IC-consistent.

Professors collaborate along an acyclic ``works_with`` graph (bounding
the recursion depth of ``eval``), expertise is seeded randomly and closed
under ``ic1`` (expertise propagates to collaborators), and payments above
the 10,000 threshold only go to doctoral students (``ic2``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..constraints.checker import repair, satisfies
from ..constraints.ic import IntegrityConstraint
from ..facts.database import Database
from .paper_examples import PaperExample, example_3_2


@dataclass(frozen=True)
class UniversityParams:
    """Knobs for the generator (defaults give a small instance)."""

    professors: int = 30
    students: int = 20
    theses: int = 20
    fields: int = 5
    fields_per_thesis: int = 1
    works_with_density: float = 0.15
    collaboration_chain: bool = True
    expert_seed_fraction: float = 0.3
    supervisions: int = 25
    payments: int = 40
    high_payment_fraction: float = 0.3
    doctoral_fraction: float = 0.4
    max_amount: int = 20000


def generate_university(params: UniversityParams,
                        rng: random.Random) -> Database:
    """Build an EDB satisfying both ICs of Example 3.2/4.2."""
    db = Database()
    fields = [f"f{i}" for i in range(params.fields)]

    # Acyclic collaboration graph: i works with j only for j > i.  The
    # optional chain guarantees recursion depth proportional to the
    # professor count, which is what amortizes the isolation overhead.
    if params.collaboration_chain:
        for i in range(params.professors - 1):
            db.add_fact("works_with", f"p{i}", f"p{i + 1}")
    for i in range(params.professors):
        for j in range(i + 1, params.professors):
            if rng.random() < params.works_with_density:
                db.add_fact("works_with", f"p{i}", f"p{j}")

    # Seed expertise; ic1 closure is added by repair below.
    for i in range(params.professors):
        if rng.random() < params.expert_seed_fraction:
            db.add_fact("expert", f"p{i}", rng.choice(fields))

    for t in range(params.theses):
        count = min(params.fields_per_thesis, len(fields))
        for field_name in rng.sample(fields, count):
            db.add_fact("field", f"t{t}", field_name)

    for _ in range(params.supervisions):
        db.add_fact("super",
                    f"p{rng.randrange(params.professors)}",
                    f"s{rng.randrange(params.students)}",
                    f"t{rng.randrange(params.theses)}")

    for s in range(params.students):
        if rng.random() < params.doctoral_fraction:
            db.add_fact("doctoral", f"s{s}")

    for g in range(params.payments):
        student = rng.randrange(params.students)
        if rng.random() < params.high_payment_fraction:
            amount = rng.randint(10001, params.max_amount)
            db.add_fact("doctoral", f"s{student}")  # keep ic2 satisfied
        else:
            amount = rng.randint(100, 10000)
        db.add_fact("pays", amount, f"g{g}", f"s{student}",
                    f"t{rng.randrange(params.theses)}")

    example = example_3_2()
    repair(db, example.ic("ic1"))
    assert satisfies(db, *example.ics)
    return db


def university_example() -> PaperExample:
    """The program + ICs this workload targets."""
    return example_3_2()


def ensure_consistent(db: Database,
                      ics: tuple[IntegrityConstraint, ...]) -> None:
    """Assert (loudly) that a generated database satisfies the ICs."""
    if not satisfies(db, *ics):  # pragma: no cover - generator bug guard
        raise AssertionError("generated university database violates ICs")
