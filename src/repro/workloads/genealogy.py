"""The genealogy workload (Example 4.3), scalable and IC-consistent.

Generations ``g0`` (oldest) .. ``gD``; each person's parents sit one
generation above.  ``ic1`` — nobody of 50 or younger has three
generations of descendants — is satisfied by construction: anyone with
at least three generations below (generation index ``<= D - 3``) is
assigned an age above 50, while the youngest generations may be young
(``young_fraction`` controls how often), which is what the conditional
pruning guard tests at run time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..constraints.checker import satisfies
from ..facts.database import Database
from .paper_examples import PaperExample, example_4_3


@dataclass(frozen=True)
class GenealogyParams:
    """Knobs for the generator."""

    generations: int = 6
    width: int = 10
    parents_per_person: int = 1
    young_fraction: float = 0.6
    old_age_range: tuple[int, int] = (51, 95)
    young_age_range: tuple[int, int] = (5, 50)


def generate_genealogy(params: GenealogyParams,
                       rng: random.Random) -> Database:
    """Build an EDB satisfying Example 4.3's ``ic1``.

    ``par(X, Xa, Y, Ya)`` reads: Y (age Ya) is a parent of X (age Xa).
    """
    db = Database()
    depth = params.generations - 1

    ages: dict[str, int] = {}

    def age_of(generation: int, person: str) -> int:
        if person not in ages:
            has_three_below = (depth - generation) >= 3
            young_allowed = not has_three_below
            if young_allowed and rng.random() < params.young_fraction:
                ages[person] = rng.randint(*params.young_age_range)
            else:
                ages[person] = rng.randint(*params.old_age_range)
        return ages[person]

    people = [[f"g{generation}_{pos}" for pos in range(params.width)]
              for generation in range(params.generations)]
    for generation in range(1, params.generations):
        for person in people[generation]:
            count = min(params.parents_per_person, params.width)
            parents = rng.sample(people[generation - 1], count)
            for parent in parents:
                db.add_fact("par",
                            person, age_of(generation, person),
                            parent, age_of(generation - 1, parent))

    example = example_4_3()
    assert satisfies(db, *example.ics), \
        "generated genealogy database violates ic1"
    return db


def genealogy_example() -> PaperExample:
    return example_4_3()
