"""Incremental view maintenance and warm query serving."""

from .maintain import (MaintenanceResult, SupportCounts,
                       is_recursive_stratum, maintain, support_counts)
from .serving import (MaterializedView, Server, program_fingerprint,
                      relation_fingerprint)

__all__ = ["MaintenanceResult", "SupportCounts", "is_recursive_stratum",
           "maintain", "support_counts",
           "MaterializedView", "Server", "program_fingerprint",
           "relation_fingerprint"]
