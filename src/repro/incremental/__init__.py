"""Incremental view maintenance (and, via re-export, warm serving).

The maintenance engine lives here; the serving layer it powers was
promoted to :mod:`repro.serving` in PR 6.  The serving names below are
re-exported lazily for backward compatibility — resolving them on
first access keeps the ``repro.serving`` <-> ``repro.incremental``
import graph acyclic (serving imports :mod:`.maintain` eagerly; we
import serving only when someone actually asks for a serving name).
"""

from .maintain import (MaintenanceResult, SupportCounts,
                       is_recursive_stratum, maintain, support_counts)

_SERVING_NAMES = ("MaterializedView", "Server", "RefreshReport",
                  "program_fingerprint", "relation_fingerprint")

__all__ = ["MaintenanceResult", "SupportCounts", "is_recursive_stratum",
           "maintain", "support_counts", *_SERVING_NAMES]


def __getattr__(name: str):
    if name in _SERVING_NAMES:
        from ..serving import views

        return getattr(views, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
