"""Delta-driven maintenance of materialized IDB relations.

Every evaluation engine in this repo computes a fixpoint from an
immutable EDB snapshot.  This module keeps an already-computed IDB
*live* under EDB changesets instead of recomputing it:

* **Insertions** re-enter the semi-naive loop with the inserted rows as
  the initial delta — the same delta-redirected rule firings (and the
  same compiled kernels, see :mod:`repro.engine.compile`) that run
  inside one evaluation are reused *across* EDB versions, which is the
  fixpoint-maintenance reading of semi-naive evaluation (Zaniolo et
  al., PAPERS.md).
* **Deletions** use the *counting algorithm* for non-recursively
  defined predicates (exact derivation counts, maintained per update)
  and *DRed* — delete-and-rederive — for recursive strata: overdelete
  everything the deleted rows could have supported, then rederive what
  still has a proof from the reduced database.

Both passes run stratum by stratum.  A changeset with deletions runs a
full deletion pass first (taking the database from the pre state to the
"mid" state ``db - deletes``), then an insertion pass (mid to post);
each pass is exact for monotone rules, and their composition covers
mixed changesets.  Programs where a changed predicate can reach a
*negated* occurrence are rejected with
:class:`~repro.errors.IncrementalUnsupported` — deletions can then grow
relations and neither pass bounds the effect — and the serving layer
(:mod:`repro.incremental.serving`) falls back to full recomputation.

Counting exactness relies on the classic delta partition: for a rule
with ``k`` occurrences of changed predicates, firing ``i`` redirects
occurrence ``i`` to the delta, occurrences before ``i`` to the *after*
state and occurrences after ``i`` to the *before* state, so every lost
(or gained) derivation is counted at exactly one firing.  The set-based
insertion pass only needs the cheaper superset partition (delta at
``i``, current state elsewhere), exactly like the in-evaluation
semi-naive rounds.

The per-derivation ``hook`` is honoured everywhere a rule fires, so
residue checks injected by the guided baseline apply to maintenance
deltas too: a residue that prunes a subquery during evaluation prunes
the same subquery during every update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Negation, Rule
from ..datalog.terms import Constant, ConstValue, Variable
from ..errors import (BudgetExceededError, EvaluationError,
                      IncrementalUnsupported)
from ..facts.changelog import Changeset
from ..facts.database import Database
from ..facts.relation import Relation, Row
from ..runtime import chaos
from ..runtime.budget import Budget, resolve_budget
from ..engine.bindings import (Binding, EvalStats, instantiate_head,
                               plan_body, solve_body, validate_planner)
from ..engine.compile import KernelCache, validate_executor
from ..engine.naive import DEFAULT_MAX_ITERATIONS
from ..engine.seminaive import DerivationHook
from ..engine.stratify import stratify
from ..engine.vectorize import VectorRunner

_MISSING = object()


@dataclass
class MaintenanceResult:
    """What one :func:`maintain` call did to the materialized IDB."""

    #: Net rows added per IDB predicate.
    added: dict[str, int] = field(default_factory=dict)
    #: Net rows removed per IDB predicate.
    removed: dict[str, int] = field(default_factory=dict)
    stats: EvalStats = field(default_factory=EvalStats)

    def total_added(self) -> int:
        return sum(self.added.values())

    def total_removed(self) -> int:
        return sum(self.removed.values())

    def __repr__(self) -> str:
        return (f"MaintenanceResult(+{self.total_added()}, "
                f"-{self.total_removed()})")


class SupportCounts:
    """Exact derivation counts for non-recursively defined predicates.

    ``by_pred[pred][row]`` is the number of distinct rule-body
    derivations of ``row`` in the current database state.  Only
    predicates in non-recursive strata are covered (cyclic support makes
    plain counts meaningless — those strata use DRed);
    :func:`maintain` keeps covered counters exact across updates, so a
    view pays the one-pass construction cost once at materialization.
    """

    def __init__(self) -> None:
        self.by_pred: dict[str, dict[Row, int]] = {}

    def covers(self, pred: str) -> bool:
        return pred in self.by_pred

    def counter(self, pred: str) -> dict[Row, int]:
        return self.by_pred.setdefault(pred, {})

    def total(self) -> int:
        return sum(sum(c.values()) for c in self.by_pred.values())

    def __repr__(self) -> str:
        return (f"SupportCounts({len(self.by_pred)} preds, "
                f"{self.total()} derivations)")


def is_recursive_stratum(stratum: frozenset[str],
                         rules: Iterable[Rule]) -> bool:
    """True when some rule of the stratum reads a same-stratum atom."""
    if len(stratum) > 1:
        return True
    return any(
        isinstance(lit, Atom) and lit.pred in stratum
        for rule in rules if rule.head.pred in stratum
        for lit in rule.body)


def support_counts(program: Program, edb: Database, idb: Database,
                   stats: EvalStats | None = None,
                   executor: str = "compiled",
                   hook: Optional[DerivationHook] = None) -> SupportCounts:
    """Build derivation counts over a *converged* ``edb``/``idb`` pair.

    One extra firing of every non-recursive rule against the final
    state; recursive strata are skipped (DRed handles them without
    counts).  Pass the same ``hook`` the materialization used so vetoed
    derivations are not counted.
    """
    stats = stats if stats is not None else EvalStats()
    validate_executor(executor)
    counts = SupportCounts()
    kernels = KernelCache(symbols=edb.symbols,
                          fuse=executor != "vectorized") \
        if executor in ("compiled", "parallel", "vectorized") else None
    vec = VectorRunner(symbols=edb.symbols) \
        if executor == "vectorized" else None
    symbols = edb.symbols
    arities = program.predicate_arities()

    def fetch(atom: Atom, index: int) -> Relation:
        if atom.pred in program.idb_predicates:
            return idb.relation(atom.pred)
        return edb.relation_or_empty(atom.pred, arities[atom.pred])

    for stratum in stratify(program):
        rules = [r for r in program if r.head.pred in stratum]
        if is_recursive_stratum(stratum, rules):
            continue
        for rule in rules:
            derived = _fire_rule(rule, fetch, stats, kernels,
                                 ("support",), symbols, hook, vec=vec)
            counter = counts.counter(rule.head.pred)
            for row in derived:
                counter[row] = counter.get(row, 0) + 1
    return counts


def maintain(program: Program, edb: Database, idb: Database,
             changeset: Changeset,
             counts: SupportCounts | None = None,
             stats: EvalStats | None = None,
             planner: str = "greedy",
             executor: str = "compiled",
             hook: Optional[DerivationHook] = None,
             budget: Budget | None = None,
             max_iterations: int = DEFAULT_MAX_ITERATIONS,
             kernels: KernelCache | None = None) -> MaintenanceResult:
    """Bring ``idb`` current after ``changeset`` was applied to ``edb``.

    ``edb`` must already be in the *post*-changeset state (as left by
    :meth:`repro.facts.changelog.VersionedDatabase.apply`) and
    ``changeset`` must be the *effective* delta: every delete was
    present before, every insert absent, and the two sets are disjoint.
    ``idb`` — the materialization of ``program`` over the pre state —
    is updated **in place**; the pre-state relations the delta passes
    need are reconstructed internally from the changeset, so callers
    never keep two EDB copies.

    ``counts`` (from :func:`support_counts`) switches non-recursive
    strata from DRed to the counting algorithm and is kept exact across
    the call.  ``kernels`` lets a serving layer reuse compiled rule
    kernels across refreshes.  Raises
    :class:`~repro.errors.IncrementalUnsupported` when a changed
    predicate can reach a negated occurrence; raises
    :class:`~repro.errors.EvaluationError` when the changeset touches
    an IDB predicate.
    """
    stats = stats if stats is not None else EvalStats()
    validate_executor(executor)
    validate_planner(planner)
    derived = changeset.predicates() & program.idb_predicates
    if derived:
        raise EvaluationError(
            f"changeset touches IDB predicate"
            f"{'s' if len(derived) > 1 else ''} "
            f"{', '.join(sorted(derived))}; incremental maintenance "
            "updates EDB relations only")
    _require_monotone_impact(program, changeset.predicates())
    run = _Maintenance(program, edb, idb, changeset, counts, stats,
                       planner, executor, hook,
                       resolve_budget(budget), max_iterations, kernels)
    return run.run()


def _require_monotone_impact(program: Program,
                             changed: frozenset[str]) -> None:
    """Reject changesets whose effect can flow through a negation."""
    graph = program.dependency_graph()
    affected = set(changed)
    frontier = [pred for pred in changed if graph.has_node(pred)]
    while frontier:
        pred = frontier.pop()
        for successor in graph.successors(pred):
            if successor not in affected:
                affected.add(successor)
                frontier.append(successor)
    for rule in program:
        for lit in rule.body:
            if isinstance(lit, Negation) and lit.atom.pred in affected:
                raise IncrementalUnsupported(
                    f"changeset affects {lit.atom.pred!r}, which occurs "
                    f"negated in rule `{rule}`; deletion deltas are not "
                    "exact through negation — recompute instead",
                    reason="negation")


def _fire_rule(rule: Rule, fetch, stats: EvalStats,
               kernels: KernelCache | None, variant: object,
               symbols, hook: Optional[DerivationHook],
               round_index: int = 0,
               keep_atom_order: bool = False,
               vec: VectorRunner | None = None) -> list[Row]:
    """All derivations of ``rule`` under ``fetch``, storage-domain rows.

    The returned list carries *multiplicity* — one entry per body
    derivation — which is what the counting algorithm consumes; the
    set-based passes simply merge it.  ``vec`` switches the firing to
    the batch kernel of the vectorized executor (falling back to the
    compiled kernel when the body is unvectorizable or a hook is set).
    """
    stats.rules_fired += 1
    if kernels is not None:
        def sizes(atom: Atom, index: int) -> int:
            return len(fetch(atom, index))

        kernel = kernels.kernel(rule, variant, sizes)
        if vec is not None:
            return vec.run(kernel, fetch, stats, hook=hook,
                           round_index=round_index)
        return kernel.execute(fetch, stats, hook=hook,
                              round_index=round_index)
    derived: list[Row] = []
    for binding in solve_body(rule, fetch, stats,
                              keep_atom_order=keep_atom_order):
        if hook is not None and not hook(rule, binding, round_index):
            continue
        head = instantiate_head(rule, binding)
        if symbols is not None:
            head = symbols.intern_row(head)
        derived.append(head)
    return derived


def _head_binding(rule: Rule,
                  values: tuple[ConstValue, ...]) -> Binding | None:
    """Bind the head variables of ``rule`` to ``values`` (None on clash)."""
    binding: Binding = {}
    for arg, value in zip(rule.head.args, values):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        elif isinstance(arg, Variable):
            known = binding.get(arg, _MISSING)
            if known is _MISSING:
                binding[arg] = value
            elif known != value:
                return None
    return binding


class _Maintenance:
    """One maintenance run: deletion pass, then insertion pass."""

    def __init__(self, program: Program, edb: Database, idb: Database,
                 changeset: Changeset, counts: SupportCounts | None,
                 stats: EvalStats, planner: str, executor: str,
                 hook: Optional[DerivationHook], budget: Budget | None,
                 max_iterations: int,
                 kernels: KernelCache | None) -> None:
        self.program = program
        self.edb = edb
        self.idb = idb
        self.counts = counts
        self.stats = stats
        self.hook = hook
        self.budget = budget
        self.max_iterations = max_iterations
        self.chaos_plan = chaos.active_plan()
        self.symbols = edb.symbols
        self.keep_atom_order = planner == "source"
        if kernels is not None:
            self.kernels: KernelCache | None = kernels
        elif executor in ("compiled", "parallel", "vectorized"):
            self.kernels = KernelCache(
                keep_atom_order=self.keep_atom_order,
                symbols=edb.symbols,
                fuse=executor != "vectorized")
        else:
            self.kernels = None
        self.vec = VectorRunner(symbols=edb.symbols) \
            if executor == "vectorized" else None
        self.arities = dict(program.predicate_arities())
        # Storage-domain changeset rows.
        self.edb_deletes = {pred: self._encode_rows(rows)
                            for pred, rows in changeset.deletes.items()
                            if rows}
        self.edb_inserts = {pred: self._encode_rows(rows)
                            for pred, rows in changeset.inserts.items()
                            if rows}
        for pred in changeset.predicates():
            self.arities.setdefault(pred, _changeset_arity(changeset,
                                                           pred))
        # Net IDB deltas, accumulated as the passes climb the strata.
        self.idb_removed: dict[str, set[Row]] = {}
        self.idb_added: dict[str, set[Row]] = {}
        # Lazily reconstructed alternate states, one cache per pass.
        self._mid_edb: dict[str, Relation] = {}
        self._del_before: dict[str, Relation] = {}
        self._ins_before: dict[str, Relation] = {}

    # -- domain helpers ------------------------------------------------------
    def _encode_rows(self, rows: Iterable[Iterable[ConstValue]]
                     ) -> set[Row]:
        if self.symbols is None:
            return {tuple(row) for row in rows}
        intern_row = self.symbols.intern_row
        return {intern_row(tuple(row)) for row in rows}

    def _decode_row(self, row: Row) -> tuple[ConstValue, ...]:
        if self.symbols is None:
            return row
        values = self.symbols.values
        return tuple(values[code] for code in row)

    def _delta_relation(self, pred: str, rows: set[Row]) -> Relation:
        rel = Relation(pred, self.arities[pred], symbols=self.symbols)
        rel.raw_merge(list(rows))
        return rel

    def _edb_relation(self, pred: str) -> Relation:
        return self.edb.relation_or_empty(pred, self.arities[pred])

    # -- state views ---------------------------------------------------------
    def _del_current(self, atom: Atom, index: int) -> Relation:
        """The *mid*-state relation during the deletion pass.

        EDB relations already hold the post state, so predicates with
        pending insertions read through a copy with those rows backed
        out; IDB relations are live (lower strata are final for this
        pass, the running stratum reads its own evolving state).
        """
        pred = atom.pred
        if pred in self.program.idb_predicates:
            return self.idb.relation(pred)
        if pred in self.edb_inserts:
            mid = self._mid_edb.get(pred)
            if mid is None:
                mid = self._edb_relation(pred).copy()
                mid.raw_discard_all(self.edb_inserts[pred])
                self._mid_edb[pred] = mid
            return mid
        return self._edb_relation(pred)

    def _del_before_rel(self, pred: str) -> Relation:
        """The pre-state relation of a deletion-changed predicate."""
        before = self._del_before.get(pred)
        if before is None:
            before = self._del_current(Atom(pred, ()), -1).copy()
            delta = self.edb_deletes.get(pred) \
                or self.idb_removed.get(pred) or set()
            before.raw_merge(list(delta))
            self._del_before[pred] = before
        return before

    def _ins_current(self, atom: Atom, index: int) -> Relation:
        """The live (post-state) relation during the insertion pass."""
        pred = atom.pred
        if pred in self.program.idb_predicates:
            return self.idb.relation(pred)
        return self._edb_relation(pred)

    def _ins_before_rel(self, pred: str) -> Relation:
        """The mid-state relation of an insertion-changed predicate."""
        before = self._ins_before.get(pred)
        if before is None:
            before = self._ins_current(Atom(pred, ()), -1).copy()
            delta = self.edb_inserts.get(pred) \
                or self.idb_added.get(pred) or set()
            before.raw_discard_all(delta)
            self._ins_before[pred] = before
        return before

    # -- budget / chaos ------------------------------------------------------
    def _tick_rows(self, rows: list[Row], last_round: int = 0) -> None:
        """Per-derivation budget/chaos events for one firing's output."""
        if self.chaos_plan is not None:
            for _ in rows:
                self.chaos_plan.derivation()
        if self.budget is not None:
            # One checkpoint per firing: a kernel execution is the unit
            # of interruptibility here, so finer ticks buy nothing.
            self.budget.checkpoint(self.stats, last_round=last_round)

    def _check_round(self, rounds: int, where: str) -> None:
        if rounds > self.max_iterations:
            raise BudgetExceededError(
                f"incremental {where} exceeded {self.max_iterations} "
                "rounds", resource="rounds", limit=self.max_iterations,
                spent=rounds - 1, stats=self.stats,
                last_round=rounds - 1)
        if self.budget is not None:
            self.budget.check_round(self.stats, last_round=rounds - 1)

    # -- driver --------------------------------------------------------------
    def run(self) -> MaintenanceResult:
        strata = stratify(self.program)
        rules_by_stratum = [
            [r for r in self.program if r.head.pred in stratum]
            for stratum in strata]
        if self.edb_deletes:
            for stratum, rules in zip(strata, rules_by_stratum):
                self._delete_stratum(stratum, rules)
        if self.edb_inserts:
            for stratum, rules in zip(strata, rules_by_stratum):
                self._insert_stratum(stratum, rules)
        result = MaintenanceResult(stats=self.stats)
        for pred, rows in self.idb_added.items():
            if rows:
                result.added[pred] = len(rows)
        for pred, rows in self.idb_removed.items():
            if rows:
                result.removed[pred] = len(rows)
        return result

    # -- deletion pass -------------------------------------------------------
    def _del_changed(self) -> dict[str, set[Row]]:
        """Predicate -> Δ⁻ for everything deleted so far this pass."""
        changed = {pred: rows
                   for pred, rows in self.edb_deletes.items() if rows}
        for pred, rows in self.idb_removed.items():
            if rows:
                changed[pred] = rows
        return changed

    def _delete_stratum(self, stratum: frozenset[str],
                        rules: list[Rule]) -> None:
        changed = self._del_changed()
        if not changed:
            return
        use_counting = (self.counts is not None
                        and not is_recursive_stratum(stratum, rules)
                        and all(self.counts.covers(p) for p in stratum))
        if use_counting:
            self._counting_delete(stratum, rules, changed)
        else:
            self._dred(stratum, rules, changed)

    def _partition_fetch(self, rule: Rule, delta_index: int,
                         delta_rel: Relation,
                         changed: dict[str, set[Row]],
                         before, current):
        """Exact-partition fetch: delta at ``delta_index``, after-state
        left of it, before-state right of it, live state elsewhere."""

        def fetch(atom: Atom, index: int) -> Relation:
            if index == delta_index:
                return delta_rel
            if atom.pred in changed:
                if index < delta_index:
                    return current(atom, index)
                return before(atom.pred)
            return current(atom, index)

        return fetch

    def _counting_delete(self, stratum: frozenset[str],
                         rules: list[Rule],
                         changed: dict[str, set[Row]]) -> None:
        assert self.counts is not None
        removed: dict[str, set[Row]] = {p: set() for p in stratum}
        for rule in rules:
            counter = self.counts.counter(rule.head.pred)
            target = self.idb.relation(rule.head.pred)
            for index, lit in enumerate(rule.body):
                if not isinstance(lit, Atom) or lit.pred not in changed:
                    continue
                delta_rel = self._delta_relation(lit.pred,
                                                 changed[lit.pred])
                fetch = self._partition_fetch(
                    rule, index, delta_rel, changed,
                    self._del_before_rel, self._del_current)
                lost = _fire_rule(rule, fetch, self.stats, self.kernels,
                                  ("count-del", index), self.symbols,
                                  self.hook,
                                  keep_atom_order=self.keep_atom_order,
                                  vec=self.vec)
                self._tick_rows(lost)
                for row in lost:
                    support = counter.get(row)
                    if support is None:
                        continue
                    if support > 1:
                        counter[row] = support - 1
                    else:
                        del counter[row]
                        if target.raw_discard(row):
                            removed[rule.head.pred].add(row)
        for pred, rows in removed.items():
            if rows:
                self.idb_removed.setdefault(pred, set()).update(rows)
                self.stats.retracted += len(rows)

    def _dred(self, stratum: frozenset[str], rules: list[Rule],
              changed: dict[str, set[Row]]) -> None:
        rels = {pred: self.idb.relation(pred) for pred in stratum}

        # Phase 1 — overdelete closure.  Non-delta occurrences read the
        # *before* state (changed externals) or the untouched stratum
        # relations, so every derivation that consumed a deleted row is
        # found; the closure is a superset, sets absorb the overcount.
        over: dict[str, set[Row]] = {pred: set() for pred in stratum}
        frontier: dict[str, set[Row]] = {pred: set() for pred in stratum}

        def collect(rule: Rule, derived: list[Row]) -> None:
            pred = rule.head.pred
            store = rels[pred].raw_rows()
            seen = over[pred]
            fresh = frontier[pred]
            for row in derived:
                if row in store and row not in seen:
                    seen.add(row)
                    fresh.add(row)

        for rule in rules:
            for index, lit in enumerate(rule.body):
                if not isinstance(lit, Atom) or lit.pred not in changed:
                    continue
                delta_rel = self._delta_relation(lit.pred,
                                                 changed[lit.pred])

                def fetch(atom: Atom, occurrence: int,
                          _target: int = index,
                          _delta: Relation = delta_rel) -> Relation:
                    if occurrence == _target:
                        return _delta
                    if atom.pred in stratum:
                        return rels[atom.pred]
                    if atom.pred in changed:
                        return self._del_before_rel(atom.pred)
                    return self._del_current(atom, occurrence)

                derived = _fire_rule(
                    rule, fetch, self.stats, self.kernels,
                    ("dred-seed", index), self.symbols, self.hook,
                    keep_atom_order=self.keep_atom_order,
                    vec=self.vec)
                self._tick_rows(derived)
                collect(rule, derived)

        rounds = 0
        while any(frontier.values()):
            rounds += 1
            self._check_round(rounds, "overdeletion")
            frontier_rels = {pred: self._delta_relation(pred, rows)
                             for pred, rows in frontier.items()}
            frontier = {pred: set() for pred in stratum}
            for rule in rules:
                for index, lit in enumerate(rule.body):
                    if not isinstance(lit, Atom) \
                            or lit.pred not in stratum:
                        continue
                    if not len(frontier_rels[lit.pred]):
                        continue

                    def fetch(atom: Atom, occurrence: int,
                              _target: int = index,
                              _fronts: dict = frontier_rels
                              ) -> Relation:
                        if occurrence == _target:
                            return _fronts[atom.pred]
                        if atom.pred in stratum:
                            return rels[atom.pred]
                        if atom.pred in changed:
                            return self._del_before_rel(atom.pred)
                        return self._del_current(atom, occurrence)

                    derived = _fire_rule(
                        rule, fetch, self.stats, self.kernels,
                        ("dred-front", index), self.symbols, self.hook,
                        round_index=rounds,
                        keep_atom_order=self.keep_atom_order,
                        vec=self.vec)
                    self._tick_rows(derived, last_round=rounds - 1)
                    collect(rule, derived)

        # Phase 2 — remove the overdeleted rows.
        for pred in stratum:
            rels[pred].raw_discard_all(over[pred])
            self.stats.overdeleted += len(over[pred])

        # Phase 3 — rederive from the reduced database.  A candidate
        # cannot support itself — it is absent from its own relation
        # until rederived; cascades among candidates are left to the
        # phase-4 propagation.
        rederived: dict[str, set[Row]] = {pred: set() for pred in stratum}
        if self.hook is None:
            self._rederive_batched(stratum, rules, rels, over, rederived)
        else:
            self._rederive_goal_directed(stratum, rules, rels, over,
                                         rederived)

        # Phase 4 — propagate the rederived rows within the stratum
        # (anything they in turn support must come back too).
        self._propagate(stratum, rules, rederived, self._del_current,
                        collect_into=None)

        for pred in stratum:
            net = {row for row in over[pred]
                   if row not in rels[pred].raw_rows()}
            if net:
                self.idb_removed.setdefault(pred, set()).update(net)
                self.stats.retracted += len(net)

    def _rederive_batched(self, stratum: frozenset[str],
                          rules: list[Rule],
                          rels: dict[str, Relation],
                          over: dict[str, set[Row]],
                          rederived: dict[str, set[Row]]) -> None:
        """Set-oriented rederivation: one firing per rule.

        The candidate set becomes a guard relation joined in front of
        the rule body — a magic seed bound to the head — so one compiled
        kernel execution checks every candidate at once instead of one
        interpreted body solve each.  The synthetic guard rule is
        structurally stable across refreshes, so its kernel compiles
        once per view lifetime.
        """
        for pred in sorted(stratum):
            candidates = over[pred]
            if not candidates:
                continue
            guard_pred = f"__dred__{pred}"
            guard_rel = Relation(guard_pred, self.arities[pred],
                                 symbols=self.symbols)
            guard_rel.raw_merge(list(candidates))
            found = rederived[pred]
            for rule in rules:
                if rule.head.pred != pred:
                    continue
                if not rule.body:
                    # A fact rule unconditionally supports its head.
                    row = next(iter(self._encode_rows(
                        [tuple(arg.value for arg in rule.head.args)])))
                    if row in candidates:
                        found.add(row)
                    continue
                guard = Atom(guard_pred, rule.head.args)
                batch_rule = Rule(rule.head, (guard,) + tuple(rule.body))

                def fetch(atom: Atom, occurrence: int,
                          _guard_pred: str = guard_pred,
                          _guard_rel: Relation = guard_rel) -> Relation:
                    if atom.pred == _guard_pred:
                        return _guard_rel
                    return self._del_current(atom, occurrence)

                derived = _fire_rule(
                    batch_rule, fetch, self.stats, self.kernels,
                    ("dred-rederive",), self.symbols, None,
                    keep_atom_order=self.keep_atom_order,
                    vec=self.vec)
                self._tick_rows(derived)
                for row in derived:
                    if row in candidates:
                        found.add(row)
            if found:
                rels[pred].raw_merge(list(found))
                self.stats.rederived += len(found)
                self.stats.derivations += len(found)

    def _rederive_goal_directed(self, stratum: frozenset[str],
                                rules: list[Rule],
                                rels: dict[str, Relation],
                                over: dict[str, set[Row]],
                                rederived: dict[str, set[Row]]) -> None:
        """Per-candidate rederivation: head variables pre-bound, first
        surviving proof wins.  Used when a derivation hook is active so
        the hook sees each (original rule, binding) pair exactly as the
        evaluation engines present them.
        """
        head_rules = {pred: [r for r in rules if r.head.pred == pred]
                      for pred in stratum}
        # One join order per rule for the whole rederivation sweep —
        # re-planning per candidate would dwarf the joins themselves.
        orders = {id(rule): plan_body(
            rule,
            lambda atom, index: len(self._del_current(atom, index)),
            keep_atom_order=self.keep_atom_order)
            for rule in rules}
        countdown = 0
        for pred in sorted(stratum):
            target = rels[pred]
            for row in over[pred]:
                if self.chaos_plan is not None:
                    self.chaos_plan.derivation()
                if self.budget is not None:
                    countdown -= 1
                    if countdown <= 0:
                        countdown = self.budget.checkpoint(self.stats)
                values = self._decode_row(row)
                proved = False
                for rule in head_rules[pred]:
                    initial = _head_binding(rule, values)
                    if initial is None:
                        continue
                    for binding in solve_body(
                            rule, self._del_current, self.stats,
                            order=orders[id(rule)], initial=initial):
                        if not self.hook(rule, binding, 0):
                            continue
                        proved = True
                        break
                    if proved:
                        break
                if proved:
                    target.raw_add(row)
                    rederived[pred].add(row)
                    self.stats.rederived += 1
                    self.stats.derivations += 1

    # -- insertion pass ------------------------------------------------------
    def _ins_changed(self) -> dict[str, set[Row]]:
        """Predicate -> Δ⁺ for everything inserted so far this pass."""
        changed = {pred: rows
                   for pred, rows in self.edb_inserts.items() if rows}
        for pred, rows in self.idb_added.items():
            if rows:
                changed[pred] = rows
        return changed

    def _insert_stratum(self, stratum: frozenset[str],
                        rules: list[Rule]) -> None:
        changed = self._ins_changed()
        if not changed:
            return
        use_counting = (self.counts is not None
                        and not is_recursive_stratum(stratum, rules)
                        and all(self.counts.covers(p) for p in stratum))
        if use_counting:
            self._counting_insert(stratum, rules, changed)
            return
        seeds: dict[str, set[Row]] = {pred: set() for pred in stratum}
        for rule in rules:
            target = self.idb.relation(rule.head.pred)
            for index, lit in enumerate(rule.body):
                if not isinstance(lit, Atom) or lit.pred not in changed:
                    continue
                if lit.pred in stratum:
                    continue  # same-stratum deltas ride the delta rounds
                delta_rel = self._delta_relation(lit.pred,
                                                 changed[lit.pred])

                def fetch(atom: Atom, occurrence: int,
                          _target: int = index,
                          _delta: Relation = delta_rel) -> Relation:
                    if occurrence == _target:
                        return _delta
                    return self._ins_current(atom, occurrence)

                derived = _fire_rule(
                    rule, fetch, self.stats, self.kernels,
                    ("ins-seed", index), self.symbols, self.hook,
                    keep_atom_order=self.keep_atom_order,
                    vec=self.vec)
                self._tick_rows(derived)
                new_rows = target.raw_merge_new(derived)
                if new_rows:
                    seeds[rule.head.pred].update(new_rows)
                    self.stats.derivations += len(new_rows)
                self.stats.duplicate_derivations += \
                    len(derived) - len(new_rows)
        self._propagate(stratum, rules, seeds, self._ins_current,
                        collect_into=self.idb_added)
        for pred, rows in seeds.items():
            if rows:
                self.idb_added.setdefault(pred, set()).update(rows)

    def _counting_insert(self, stratum: frozenset[str],
                         rules: list[Rule],
                         changed: dict[str, set[Row]]) -> None:
        assert self.counts is not None
        added: dict[str, set[Row]] = {pred: set() for pred in stratum}
        for rule in rules:
            counter = self.counts.counter(rule.head.pred)
            target = self.idb.relation(rule.head.pred)
            for index, lit in enumerate(rule.body):
                if not isinstance(lit, Atom) or lit.pred not in changed:
                    continue
                delta_rel = self._delta_relation(lit.pred,
                                                 changed[lit.pred])
                fetch = self._partition_fetch(
                    rule, index, delta_rel, changed,
                    self._ins_before_rel, self._ins_current)
                gained = _fire_rule(
                    rule, fetch, self.stats, self.kernels,
                    ("count-ins", index), self.symbols, self.hook,
                    keep_atom_order=self.keep_atom_order,
                    vec=self.vec)
                self._tick_rows(gained)
                for row in gained:
                    support = counter.get(row, 0)
                    counter[row] = support + 1
                    if support == 0 and target.raw_add(row):
                        added[rule.head.pred].add(row)
                        self.stats.derivations += 1
                    elif support:
                        self.stats.duplicate_derivations += 1
        for pred, rows in added.items():
            if rows:
                self.idb_added.setdefault(pred, set()).update(rows)

    def _propagate(self, stratum: frozenset[str], rules: list[Rule],
                   deltas: dict[str, set[Row]], current,
                   collect_into: dict[str, set[Row]] | None) -> None:
        """Standard semi-naive delta rounds within one stratum."""
        live = {pred: set(rows) for pred, rows in deltas.items()}
        rounds = 0
        while any(live.values()):
            rounds += 1
            self._check_round(rounds, "propagation")
            delta_rels = {pred: self._delta_relation(pred, rows)
                          for pred, rows in live.items()}
            live = {pred: set() for pred in stratum}
            for rule in rules:
                target = self.idb.relation(rule.head.pred)
                for index, lit in enumerate(rule.body):
                    if not isinstance(lit, Atom) \
                            or lit.pred not in stratum:
                        continue
                    if not len(delta_rels.get(lit.pred, ())):
                        continue

                    def fetch(atom: Atom, occurrence: int,
                              _target: int = index,
                              _deltas: dict = delta_rels) -> Relation:
                        if occurrence == _target:
                            return _deltas[atom.pred]
                        return current(atom, occurrence)

                    derived = _fire_rule(
                        rule, fetch, self.stats, self.kernels,
                        ("prop", index), self.symbols, self.hook,
                        round_index=rounds,
                        keep_atom_order=self.keep_atom_order,
                        vec=self.vec)
                    self._tick_rows(derived, last_round=rounds - 1)
                    new_rows = target.raw_merge_new(derived)
                    if new_rows:
                        live[rule.head.pred].update(new_rows)
                        self.stats.derivations += len(new_rows)
                        if collect_into is not None:
                            collect_into.setdefault(
                                rule.head.pred, set()).update(new_rows)
                    self.stats.duplicate_derivations += \
                        len(derived) - len(new_rows)


def _changeset_arity(changeset: Changeset, pred: str) -> int:
    for by_pred in (changeset.inserts, changeset.deletes):
        rows = by_pred.get(pred)
        if rows:
            return len(next(iter(rows)))
    return 0
