"""Warm query serving over maintained materializations.

A :class:`MaterializedView` pairs one program with one
:class:`~repro.facts.changelog.VersionedDatabase` and keeps the
program's full IDB materialized across EDB versions: the first use pays
a fixpoint evaluation, every later use pays only
:func:`~repro.incremental.maintain.maintain` over the net changeset
since the version the view last saw.  Compiled rule kernels and
support counts persist inside the view, so the compile-once /
reuse-many economics the paper argues for rewrites (Section 3) extend
across the whole update stream.

A :class:`Server` is a registry of such views keyed by
``(program fingerprint, planner, executor)`` — the knobs that change
what a materialization physically is — plus the shared versioned
database.  ``serve`` refreshes lazily: queries between updates are
answered straight from the warm IDB.

Self-healing: a refresh interrupted mid-flight (budget exhaustion,
cancellation, injected fault) leaves the IDB half-maintained, so the
view marks itself invalid before re-raising; the next refresh discards
the partial state and falls back to a full, from-scratch
materialization.  A changeset the maintenance engine cannot handle
(:class:`~repro.errors.IncrementalUnsupported`) falls back the same
way, silently — correctness never depends on the incremental path.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional

from ..datalog.parser import parse_query
from ..datalog.program import Program
from ..errors import IncrementalUnsupported, ReproError
from ..facts.changelog import Changeset, VersionedDatabase
from ..facts.database import Database
from ..engine.bindings import EvalStats
from ..engine.compile import KernelCache, validate_executor
from ..engine.bindings import validate_planner
from ..engine.seminaive import DerivationHook, answers, \
    seminaive_evaluate
from ..runtime.budget import Budget
from .maintain import SupportCounts, maintain, support_counts


def program_fingerprint(program: Program) -> str:
    """A stable 16-hex-digit digest of the program's rules, in order."""
    text = "\n".join(str(rule) for rule in program)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def relation_fingerprint(db: Database) -> str:
    """A digest of a database's facts, interning-agnostic.

    Computed over the sorted value-domain serialization, so a raw and an
    interned database holding the same facts fingerprint identically —
    the property the differential tests lean on.
    """
    return hashlib.sha256(db.to_text().encode()).hexdigest()[:16]


class MaterializedView:
    """One program's IDB, kept live against a versioned database."""

    def __init__(self, program: Program, source: VersionedDatabase,
                 planner: str = "greedy", executor: str = "compiled",
                 hook: Optional[DerivationHook] = None,
                 use_counts: bool = True) -> None:
        validate_executor(executor)
        validate_planner(planner)
        self.program = program
        self.source = source
        self.planner = planner
        self.executor = executor
        self.hook = hook
        self.use_counts = use_counts
        self.idb: Database | None = None
        self.counts: SupportCounts | None = None
        self.kernels = KernelCache(
            keep_atom_order=planner == "source",
            symbols=source.db.symbols) if executor == "compiled" else None
        #: EDB version the materialization reflects; -1 = never built.
        self.version = -1
        #: False while the IDB may be mid-maintenance garbage.
        self.valid = False
        self.stats = EvalStats()
        self.full_refreshes = 0
        self.incremental_refreshes = 0
        self.last_mode: str | None = None
        self.last_refresh_s: float | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        return (program_fingerprint(self.program), self.planner,
                self.executor)

    def __repr__(self) -> str:
        state = "stale" if self.version < self.source.version \
            else "fresh"
        if not self.valid:
            state = "invalid"
        return (f"MaterializedView({self.key[0]}, v{self.version} "
                f"{state}, planner={self.planner}, "
                f"executor={self.executor})")

    # -- lifecycle -----------------------------------------------------------
    def _materialize(self, budget: Budget | None) -> str:
        started = time.perf_counter()
        self.valid = False
        stats = EvalStats()
        self.idb = seminaive_evaluate(
            self.program, self.source.db, stats=stats,
            hook=self.hook, planner=self.planner, budget=budget,
            executor=self.executor)
        self.counts = support_counts(
            self.program, self.source.db, self.idb, stats=stats,
            executor=self.executor, hook=self.hook) \
            if self.use_counts else None
        self.stats.merge(stats)
        self.version = self.source.version
        self.valid = True
        self.full_refreshes += 1
        self.last_mode = "full"
        self.last_refresh_s = time.perf_counter() - started
        return "full"

    def refresh(self, budget: Budget | None = None) -> str:
        """Bring the view current; returns how it got there.

        ``"fresh"`` — already at the source version, nothing ran.
        ``"incremental"`` — delta maintenance over the net changeset.
        ``"full"`` — from-scratch materialization (first build, an
        invalidated view, or an unsupported changeset).

        Any error escaping a refresh leaves the view invalid; the next
        call self-heals with a full rebuild.
        """
        if not self.valid or self.idb is None:
            return self._materialize(budget)
        if self.version >= self.source.version:
            self.last_mode = "fresh"
            return "fresh"
        changes = self.source.changes_since(self.version)
        if changes.is_empty:
            self.version = self.source.version
            self.last_mode = "fresh"
            return "fresh"
        started = time.perf_counter()
        self.valid = False
        try:
            maintain(self.program, self.source.db, self.idb, changes,
                     counts=self.counts, stats=self.stats,
                     planner=self.planner, executor=self.executor,
                     hook=self.hook, budget=budget,
                     kernels=self.kernels)
        except IncrementalUnsupported:
            return self._materialize(budget)
        self.version = self.source.version
        self.valid = True
        self.incremental_refreshes += 1
        self.last_mode = "incremental"
        self.last_refresh_s = time.perf_counter() - started
        return "incremental"

    def invalidate(self) -> None:
        """Force the next refresh to rebuild from scratch."""
        self.valid = False

    # -- reads ---------------------------------------------------------------
    def query(self, text_or_literals) -> set[tuple]:
        """Answer a conjunctive query from the warm materialization.

        The caller is responsible for refreshing first (``Server.serve``
        does); querying a stale view answers as of :attr:`version`.
        """
        if self.idb is None:
            raise ReproError("view was never materialized; call refresh()")
        if isinstance(text_or_literals, str):
            literals = parse_query(text_or_literals).literals
        else:
            literals = tuple(text_or_literals)
        return answers(literals, self.program, self.source.db,
                       self.idb, self.stats)

    def facts(self, pred: str) -> frozenset[tuple]:
        if self.idb is None:
            raise ReproError("view was never materialized; call refresh()")
        return self.idb.facts(pred)

    def fingerprint(self) -> str:
        """Digest of the current IDB (for differential comparison)."""
        if self.idb is None:
            raise ReproError("view was never materialized; call refresh()")
        return relation_fingerprint(self.idb)

    def describe(self) -> dict:
        """A JSON-friendly summary (CLI ``serve --describe``)."""
        return {
            "program": self.key[0],
            "planner": self.planner,
            "executor": self.executor,
            "version": self.version,
            "source_version": self.source.version,
            "valid": self.valid,
            "counts": self.counts is not None
            and len(self.counts.by_pred),
            "full_refreshes": self.full_refreshes,
            "incremental_refreshes": self.incremental_refreshes,
            "last_mode": self.last_mode,
            "idb_facts": self.idb.total_facts()
            if self.idb is not None else 0,
        }


class Server:
    """A versioned database plus a registry of materialized views."""

    def __init__(self, db: Database | None = None,
                 source: VersionedDatabase | None = None) -> None:
        if source is not None and db is not None:
            raise ReproError("pass either db or source, not both")
        self.source = source if source is not None \
            else VersionedDatabase(db)
        self.views: dict[tuple[str, str, str], MaterializedView] = {}

    def __repr__(self) -> str:
        return (f"Server(v{self.source.version}, "
                f"{len(self.views)} views)")

    @property
    def version(self) -> int:
        return self.source.version

    def view(self, program: Program, planner: str = "greedy",
             executor: str = "compiled",
             hook: Optional[DerivationHook] = None,
             use_counts: bool = True) -> MaterializedView:
        """Get or create the view for ``(program, planner, executor)``."""
        key = (program_fingerprint(program), planner, executor)
        existing = self.views.get(key)
        if existing is not None:
            return existing
        view = MaterializedView(program, self.source, planner=planner,
                                executor=executor, hook=hook,
                                use_counts=use_counts)
        self.views[key] = view
        return view

    def idb_predicates(self) -> frozenset[str]:
        """IDB predicates across every registered view's program."""
        preds: set[str] = set()
        for view in self.views.values():
            preds |= view.program.idb_predicates
        return frozenset(preds)

    def apply(self, changeset: Changeset) -> int:
        """Apply a changeset to the shared database; views go stale.

        Nothing recomputes here — refresh is lazy, at the next serve.
        """
        return self.source.apply(changeset,
                                 idb_predicates=self.idb_predicates())

    def serve(self, program: Program, query,
              planner: str = "greedy", executor: str = "compiled",
              budget: Budget | None = None) -> set[tuple]:
        """Answer ``query`` from a warm, current materialization."""
        view = self.view(program, planner=planner, executor=executor)
        view.refresh(budget)
        return view.query(query)

    def refresh_all(self, budget: Budget | None = None) -> dict[str, str]:
        """Refresh every view; returns fingerprint -> mode."""
        return {key[0]: view.refresh(budget)
                for key, view in self.views.items()}

    def describe(self) -> dict:
        return {
            "version": self.source.version,
            "edb_facts": self.source.db.total_facts(),
            "log_entries": len(self.source.log),
            "views": [view.describe() for view in self.views.values()],
        }
