"""Compatibility shim: the serving layer moved to :mod:`repro.serving`.

PR 6 promoted ``repro.incremental.serving`` into the top-level
``repro.serving`` package (snapshot reads, the write pipeline, and the
threaded front-end live there now).  This module keeps the old import
path working; new code should import from :mod:`repro.serving`.

Attribute access is lazy (PEP 562) so that importing
``repro.incremental`` — which :mod:`repro.serving.views` itself does,
for the maintenance engine — never recurses into a half-initialized
``repro.serving``.
"""

from __future__ import annotations

__all__ = ["MaterializedView", "Server", "RefreshReport",
           "program_fingerprint", "relation_fingerprint"]


def __getattr__(name: str):
    if name in __all__:
        from ..serving import views

        return getattr(views, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
