"""Tests for derivation trees (why-provenance)."""

import pytest

from repro.core import SemanticOptimizer
from repro.datalog import atom, parse_program
from repro.engine import evaluate
from repro.engine.explain import Explainer, explain
from repro.errors import EvaluationError
from repro.facts import Database
from repro.workloads import example_4_3


class TestExplain:
    def test_edb_fact(self, tc_program, chain_db):
        derivation = explain(tc_program, chain_db, atom("edge", "a", "b"))
        assert derivation is not None and derivation.is_fact

    def test_base_case(self, tc_program, chain_db):
        derivation = explain(tc_program, chain_db,
                             atom("reach", "a", "b"))
        assert derivation.rule == "r0"
        assert derivation.depth() == 2
        assert derivation.children[0].atom == atom("edge", "a", "b")

    def test_recursive_derivation(self, tc_program, chain_db):
        derivation = explain(tc_program, chain_db,
                             atom("reach", "a", "d"))
        assert derivation.rule == "r1"
        # reach(a,d) <- reach(a,c) <- reach(a,b) <- edge.
        assert derivation.rule_string() == ("r1", "r1", "r0")
        assert derivation.depth() == 4
        assert derivation.size() == 6  # 3 reach nodes + 3 edge leaves

    def test_underivable_returns_none(self, tc_program, chain_db):
        assert explain(tc_program, chain_db,
                       atom("reach", "d", "a")) is None
        assert explain(tc_program, chain_db,
                       atom("edge", "z", "z")) is None

    def test_ground_goal_required(self, tc_program, chain_db):
        with pytest.raises(EvaluationError):
            explain(tc_program, chain_db, atom("reach", "a", "Y"))

    def test_no_circular_proofs_on_cycles(self, tc_program):
        db = Database({"edge": [("a", "b"), ("b", "a")]})
        derivation = explain(tc_program, db, atom("reach", "a", "a"))
        assert derivation is not None
        # The proof bottoms out in EDB facts (finite depth).
        assert derivation.depth() <= 4

    def test_render(self, tc_program, chain_db):
        derivation = explain(tc_program, chain_db,
                             atom("reach", "a", "c"))
        text = derivation.render()
        assert "reach(a, c)  [r1]" in text
        assert "edge(b, c)  [edb]" in text

    def test_explainer_reuse(self, tc_program, chain_db):
        explainer = Explainer(tc_program, chain_db)
        for target in ("b", "c", "d"):
            derivation = explainer.explain(atom("reach", "a", target))
            assert derivation is not None

    def test_reuses_precomputed_idb(self, tc_program, chain_db):
        result = evaluate(tc_program, chain_db)
        derivation = explain(tc_program, chain_db,
                             atom("reach", "a", "d"), idb=result.idb)
        assert derivation is not None


class TestExplainOptimizedPrograms:
    def test_pruned_program_proves_same_tuples(self):
        example = example_4_3()
        optimized = SemanticOptimizer(
            example.program, [example.ic("ic1")]).optimize().optimized
        db = Database.from_text("""
            par(cal, 7, bob, 30).
            par(bob, 30, ann, 72).
        """)
        plain = evaluate(example.program, db)
        for row in plain.facts("anc"):
            goal = atom("anc", *row)
            original_proof = explain(example.program, db, goal)
            optimized_proof = explain(optimized, db, goal)
            assert original_proof is not None
            assert optimized_proof is not None

    def test_rule_string_matches_expansion_sequence(self, ex43):
        db = Database.from_text("""
            par(d, 5, c, 40).
            par(c, 40, b, 60).
            par(b, 60, a, 90).
        """)
        derivation = explain(ex43.program, db, atom("anc", "d", 5, "a", 90))
        assert derivation.rule_string() == ("r1", "r1", "r0")
