"""Compiled kernels: differential equivalence against the interpreter.

The compiled executor is an optimization, not a semantics change; these
tests pin that down the way the engine bench does — every workload, every
method, both executors — plus the planner tie-breaks the kernels bake in,
hook/chaos behaviour under compilation, and the relation-index contract
the kernels rely on.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog import parse_program
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.engine import (EXECUTORS, EvalStats, KernelCache,
                          compile_rule, evaluate, evaluate_with_magic,
                          explain_kernels)
from repro.engine.bindings import plan_body
from repro.engine.compile import validate_executor
from repro.errors import BudgetExceededError, EvaluationError
from repro.facts import Database
from repro.facts.relation import Relation
from repro.runtime import Budget
from repro.runtime.chaos import ChaosError, ChaosPlan
from repro.workloads import (GenealogyParams, OrganizationParams,
                             UniversityParams, example_2_1,
                             example_3_2, example_4_1, example_4_3,
                             example_5_1, generate_genealogy,
                             generate_organization, generate_university,
                             random_digraph,
                             transitive_closure_program, tree_edges)

# ---------------------------------------------------------------------------
# Workload corpus: (name, program, edb, magic_query or None)
# ---------------------------------------------------------------------------


def _tc_workload():
    program = parse_program(transitive_closure_program())
    edb = random_digraph(60, 180, random.Random(11))
    return program, edb, Atom("reach", (Variable("X"), Variable("Y")))


def _same_generation_workload():
    program = parse_program("""
        r0: sg(X, X) :- person(X).
        r1: sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp).
    """)
    edb = tree_edges(4, 2, pred="par")
    for person in sorted({v for row in edb.facts("par") for v in row}):
        edb.add_fact("person", person)
    return program, edb, Atom("sg", (Variable("X"), Variable("Y")))


def _negation_workload():
    program = parse_program("""
        r0: reach(X, Y) :- edge(X, Y).
        r1: reach(X, Y) :- reach(X, Z), edge(Z, Y).
        r2: unreached(X, Y) :- node(X), node(Y), not reach(X, Y).
    """)
    edb = random_digraph(25, 60, random.Random(3))
    for node in sorted({v for row in edb.facts("edge") for v in row}):
        edb.add_fact("node", node)
    return program, edb, None  # magic rewrite targets positive programs


def _arithmetic_workload():
    program = parse_program("""
        r0: dist(X, Y, 1) :- edge(X, Y).
        r1: dist(X, Y, D1) :- dist(X, Z, D), edge(Z, Y), D < 6,
                              D1 = D + 1.
    """)
    edb = random_digraph(30, 80, random.Random(5))
    return program, edb, None  # arithmetic heads: keep bottom-up only


def _university_workload():
    example = example_3_2()
    edb = generate_university(UniversityParams(), random.Random(17))
    return example.program, edb, None


def _genealogy_workload():
    example = example_4_3()
    edb = generate_genealogy(GenealogyParams(), random.Random(19))
    query = Atom("anc", tuple(Variable(n) for n in ("X", "Xa", "Y", "Ya")))
    return example.program, edb, query


def _organization_workload():
    example = example_4_1()
    edb = generate_organization(OrganizationParams(), random.Random(29))
    return example.program, edb, None


def _chain_abstract_workload():
    example = example_2_1()
    edb = Database.from_text("""
        e(x1, x2, x3, x4, x5, x6).
        a(x1, x2, x4). b(y2, x3). c(y3, y4, x5). d(y5, x6).
        e(x1, y2, y3, y4, y5, y6).
    """)
    return example.program, edb, None


def _iqa_workload():
    example = example_5_1()
    edb = Database.from_text("""
        transcript(ann, cs, 33, 3.9). transcript(bob, cs, 20, 3.9).
        transcript(cid, ee, 35, 3.1).
        publication(bob, p1). appears(p1, j1). reputed(j1).
        graduated(dee, mit). topten(mit).
    """)
    return example.program, edb, None


WORKLOADS = {
    "transitive_closure": _tc_workload,
    "same_generation": _same_generation_workload,
    "negation": _negation_workload,
    "arithmetic": _arithmetic_workload,
    "university_3_2": _university_workload,
    "genealogy_4_3": _genealogy_workload,
    "organization_4_1": _organization_workload,
    "chain_2_1": _chain_abstract_workload,
    "iqa_5_1": _iqa_workload,
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("method", ["seminaive", "naive"])
def test_compiled_matches_interpreted(name, method):
    """Identical databases and derivation counts, every workload."""
    program, edb, _query = WORKLOADS[name]()
    results = {executor: evaluate(program, edb, method=method,
                                  executor=executor)
               for executor in EXECUTORS}
    compiled, interpreted = (results["compiled"],
                             results["interpreted"])
    assert compiled.idb == interpreted.idb
    assert compiled.stats.derivations == interpreted.stats.derivations
    assert compiled.stats.duplicate_derivations == \
        interpreted.stats.duplicate_derivations


@pytest.mark.parametrize(
    "name", [n for n in sorted(WORKLOADS) if WORKLOADS[n]()[2]])
def test_compiled_matches_interpreted_under_magic(name):
    program, edb, query = WORKLOADS[name]()
    results = {executor: evaluate_with_magic(program, edb, query,
                                             executor=executor)
               for executor in EXECUTORS}
    assert results["compiled"].idb == results["interpreted"].idb
    assert results["compiled"].stats.derivations == \
        results["interpreted"].stats.derivations


def test_methods_agree_on_compiled_executor():
    program, edb, _query = _tc_workload()
    seminaive = evaluate(program, edb, method="seminaive")
    naive = evaluate(program, edb, method="naive")
    assert seminaive.idb == naive.idb


# ---------------------------------------------------------------------------
# Planner tie-breaking (the orders kernels bake in)
# ---------------------------------------------------------------------------


def _sizes_from(table):
    return lambda atom, index: table[atom.pred]


def test_plan_body_prefers_more_bound_variables():
    rule = parse_program("""
        h(X, Y) :- anchor(X), wide(X, Y), loose(Z).
    """).rules[0]
    order = plan_body(rule, _sizes_from(
        {"anchor": 10, "wide": 1000, "loose": 50}))
    # After anchor binds X, wide has a bound column; boundness beats
    # loose's smaller size.
    assert order == [0, 1, 2]


def test_plan_body_breaks_bound_ties_by_relation_size():
    rule = parse_program("""
        h(X) :- big(X), small(X).
    """).rules[0]
    order = plan_body(rule, _sizes_from({"big": 500, "small": 3}))
    assert order[0] == 1  # equal boundness (none): smaller scans first


def test_plan_body_breaks_size_ties_by_source_order():
    rule = parse_program("""
        h(X, Y) :- first(X), second(Y).
    """).rules[0]
    order = plan_body(rule, _sizes_from({"first": 7, "second": 7}))
    assert order == [0, 1]


def test_plan_body_keep_atom_order_pins_atoms_not_builtins():
    rule = parse_program("""
        h(X) :- big(X, Y), small(Y), Y > 1.
    """).rules[0]
    order = plan_body(rule, _sizes_from({"big": 100, "small": 1}),
                      keep_atom_order=True)
    atoms_only = [i for i in order if i != 2]
    assert atoms_only == [0, 1]       # source order despite sizes
    assert order.index(2) > order.index(0)  # comparison waits for Y


def test_kernel_cache_reuses_kernels_per_variant():
    program, edb, _query = _tc_workload()
    rule = program.rules[1]
    cache = KernelCache()
    sizes = _sizes_from({"reach": 10, "edge": 100})
    first = cache.kernel(rule, 0, sizes)
    assert cache.kernel(rule, 0, sizes) is first
    assert cache.kernel(rule, None, sizes) is not first


def test_compile_rejects_unsafe_head():
    rule = parse_program("h(X, Y) :- a(X).",
                         edb_hint=("a",)).rules[0]
    with pytest.raises(EvaluationError, match="range restricted"):
        compile_rule(rule, lambda atom, index: 0)


def test_validate_executor_rejects_unknown():
    with pytest.raises(EvaluationError, match="executor"):
        validate_executor("gpu")
    program, edb, _query = _tc_workload()
    with pytest.raises(EvaluationError, match="executor"):
        evaluate(program, edb, executor="gpu")


def test_explain_kernels_renders_steps(tc_program, chain_db):
    text = explain_kernels(tc_program, chain_db)
    assert "probe" in text or "scan" in text
    assert "slots" in text


# ---------------------------------------------------------------------------
# Hooks and chaos: same observable behaviour under both executors
# ---------------------------------------------------------------------------


def test_hook_veto_suppresses_same_rows_in_both_executors(tc_program):
    edb = random_digraph(40, 120, random.Random(13))

    def run(executor):
        vetoed = []

        def hook(rule, binding, round_index):
            if rule.label == "r1" and \
                    str(binding[Variable("Y")]) >= "n30":
                vetoed.append((binding[Variable("X")],
                               binding[Variable("Y")]))
                return False
            return True

        result = evaluate(tc_program, edb, hook=hook, executor=executor)
        return result, sorted(set(vetoed))

    compiled, compiled_vetoed = run("compiled")
    interpreted, interpreted_vetoed = run("interpreted")
    assert compiled.idb == interpreted.idb
    assert compiled_vetoed == interpreted_vetoed
    assert compiled_vetoed  # the veto actually fired
    assert compiled.stats.derivations == interpreted.stats.derivations


def test_hook_round_index_matches_interpreter(tc_program, chain_db):
    def rounds_seen(executor):
        seen = []

        def hook(rule, binding, round_index):
            seen.append((rule.label, round_index))
            return True

        evaluate(tc_program, chain_db, hook=hook, executor=executor)
        return sorted(seen)

    assert rounds_seen("compiled") == rounds_seen("interpreted")


@pytest.mark.parametrize("method", ["seminaive", "naive"])
def test_chaos_fires_at_same_ordinal_in_both_executors(method):
    program, edb, _query = _tc_workload()
    logs = {}
    for executor in EXECUTORS:
        plan = ChaosPlan().fail_derivation(40)
        with plan.active():
            with pytest.raises(ChaosError):
                evaluate(program, edb, method=method, executor=executor)
        logs[executor] = list(plan.triggered)
    assert logs["compiled"] == logs["interpreted"] == \
        [("derivation", 40)]


def test_budget_exhaustion_payload_exact_under_compiled():
    program, edb, _query = _tc_workload()
    with pytest.raises(BudgetExceededError) as info:
        evaluate(program, edb, budget=Budget(max_facts=50))
    assert info.value.stats.derivations == 50


def test_rule_rows_buckets_same_head_rules_separately():
    # Unlabeled same-head rules must land in distinct buckets (keyed by
    # the auto-assigned label, or ``pred#index`` when labels are absent)
    # instead of collapsing into one per-predicate counter.
    program = parse_program("""
        p(X) :- a(X).
        p(X) :- b(X).
    """)
    edb = Database.from_text("a(1). a(2). b(3).")
    for executor in EXECUTORS:
        stats = evaluate(program, edb, executor=executor).stats
        assert stats.rule_rows.get("r0") == 2
        assert stats.rule_rows.get("r1") == 1


# ---------------------------------------------------------------------------
# Relation index contract (what the kernels probe)
# ---------------------------------------------------------------------------


def test_index_for_is_cached_and_live():
    relation = Relation("edge", 2)
    relation.add(("a", "b"))
    index = relation.index_for((0,))
    assert index is relation.index_for((0,))
    relation.add(("a", "c"))
    assert len(index[("a",)]) == 2  # live: new rows land in the bucket


def test_add_all_updates_existing_indexes():
    relation = Relation("edge", 2)
    relation.add(("a", "b"))
    index = relation.index_for((1,))
    added = relation.add_all([("a", "b"), ("c", "b"), ("d", "e")])
    assert added == 2
    assert {row for row in index[("b",)]} == {("a", "b"), ("c", "b")}
    assert relation.lookup(((1, "e"),))


def test_lookup_empty_pattern_returns_row_container():
    relation = Relation("edge", 2)
    relation.add_all([("a", "b"), ("c", "d")])
    rows = relation.lookup(())
    assert len(rows) == 2
    assert set(rows) == {("a", "b"), ("c", "d")}
