"""The cost-based enumerating optimizer (``planner="cbo"``).

Covers the bounded rewrite space (residue pushing per IC, magic sets
per adornment weakening, left/right linearization, rule fusion), the
memo's group-level deduplication, the unified cost model over dataflow
size bounds, the per-rule batch-vs-row kernel choice under the
vectorized executor, drift-replan re-entry, and the equivalence
discipline: whole-program ``planner="cbo"`` runs stay bit-identical to
the adaptive planner, and every chosen rewrite answers the query
exactly like the unrewritten program.
"""

import random

import pytest

from repro.datalog import parse_program
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.engine import (ChosenPlan, cbo_answers, cbo_evaluate,
                          choose_plan, enumerate_candidates, evaluate,
                          explain_answer, kernel_chooser, magic_answers,
                          predicted_frontier_width)
from repro.engine.compile import KernelCache
from repro.engine.magic import magic_rewrite
from repro.engine.optimizer import (MAX_CANDIDATES, MIN_BATCH_WIDTH,
                                    Memo, PlanCandidate,
                                    _adornment_choices, _linearizations,
                                    estimate_program_cost)
from repro.engine.plan import explain_kernels
from repro.errors import TransformError
from repro.facts import Database
from repro.workloads import load
from repro.workloads.generators import (random_digraph,
                                        transitive_closure_program)

TC = parse_program(transitive_closure_program())

SG = parse_program("""
    r0: sg(X, X) :- person(X).
    r1: sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp).
""")

AUX = parse_program("""
    a0: link(X, Y) :- edge(X, Y).
    r0: tc2(X, Y) :- link(X, Y).
    r1: tc2(X, Z) :- tc2(X, Y), link(Y, Z).
""")


def chain_db(n=30):
    db = Database()
    db.ensure("edge", 2)
    for i in range(n):
        db.add_fact("edge", f"n{i}", f"n{i + 1}")
    return db


def digraph(nodes=120, edges=360, seed=7):
    return random_digraph(nodes, edges, random.Random(seed))


BOUND = Atom("reach", (Constant("n0"), Variable("Y")))
FREE = Atom("reach", (Variable("X"), Variable("Y")))


def labels(memo):
    return [group.candidate.label for group in memo]


class TestEnumeration:
    def test_identity_is_always_first(self):
        memo = enumerate_candidates(TC, query=BOUND)
        first = next(iter(memo))
        assert first.candidate.transforms == ()
        assert first.candidate.label == "identity"

    def test_no_query_no_ics_degenerates_to_identity(self):
        memo = enumerate_candidates(TC)
        assert labels(memo) == ["identity"]

    def test_bound_query_enumerates_magic_and_linearization(self):
        memo = enumerate_candidates(TC, query=BOUND)
        seen = labels(memo)
        assert "magic[bf]" in seen
        assert "linearize[reach:right]" in seen
        assert "linearize[reach:right] + magic[bf]" in seen

    def test_two_constants_enumerate_adornment_weakenings(self):
        query = Atom("reach", (Constant("n0"), Constant("n5")))
        assert _adornment_choices(query) == ["bb", "bf", "fb"]
        seen = labels(enumerate_candidates(TC, query=query))
        assert {"magic[bb]", "magic[bf]", "magic[fb]"} <= set(seen)

    def test_ics_enumerate_residue_pushing(self):
        example = load("example_4_3")
        memo = enumerate_candidates(example.program, ics=example.ics)
        assert any(label.startswith("residues[") for label in
                   labels(memo))

    def test_fusion_unfolds_edb_only_auxiliary(self):
        query = Atom("tc2", (Constant("n0"), Variable("Y")))
        memo = enumerate_candidates(AUX, query=query)
        fused = [g for g in memo if "fuse" in g.candidate.transforms]
        assert fused
        assert "link" not in fused[0].candidate.program.idb_predicates

    def test_memo_dedups_by_program_fingerprint(self):
        memo = Memo()
        a = memo.add(PlanCandidate(TC, ()))
        b = memo.add(PlanCandidate(TC, ("some-other-path",)))
        assert a is b
        assert len(memo) == 1
        assert memo.paths == 2
        assert a.derivations == [(), ("some-other-path",)]

    def test_candidate_cap_respected(self):
        memo = enumerate_candidates(TC, query=BOUND, max_candidates=2)
        assert len(memo) <= 2
        assert len(memo) <= MAX_CANDIDATES


class TestAdornmentValidation:
    def test_explicit_adornment_must_match_arity(self):
        with pytest.raises(TransformError):
            magic_rewrite(TC, BOUND, adornment="b")

    def test_bound_mark_needs_a_query_constant(self):
        with pytest.raises(TransformError,
                           match="non-constant query argument"):
            magic_rewrite(TC, BOUND, adornment="bb")

    def test_all_free_adornment_is_rejected(self):
        with pytest.raises(TransformError):
            magic_rewrite(TC, BOUND, adornment="ff")

    def test_explicit_natural_adornment_matches_default(self):
        db = chain_db(10)
        explicit = magic_rewrite(TC, BOUND, adornment="bf")
        assert explicit.query_pred == magic_rewrite(TC, BOUND).query_pred
        rewritten = evaluate(explicit.program, db)
        assert explicit.answers(rewritten.idb) \
            == magic_answers(TC, db, BOUND)


class TestLinearization:
    def test_left_linear_tc_swaps_to_right(self):
        variants = _linearizations(TC)
        assert [label for _, label in variants] \
            == ["linearize[reach:right]"]
        swapped, _ = variants[0]
        recursive = [r for r in swapped.rules_for("reach")
                     if "reach" in r.body_predicates()][0]
        assert recursive.body[0].pred == "edge"
        assert recursive.body[1].pred == "reach"

    def test_swap_preserves_the_closure(self):
        db = digraph()
        swapped, _ = _linearizations(TC)[0]
        assert evaluate(swapped, db).facts("reach") \
            == evaluate(TC, db).facts("reach")

    def test_non_tc_shapes_are_left_alone(self):
        assert _linearizations(SG) == []


class TestCostModel:
    def test_bound_query_prefers_magic_on_a_real_graph(self):
        db = digraph(300, 900)
        choice = choose_plan(TC, db, query=BOUND)
        assert any(t.startswith("magic[") for t in choice.transforms)
        by_label = {label: cost for _, label, cost in choice.table}
        assert choice.cost < by_label["identity"]

    def test_free_query_prefers_identity(self):
        choice = choose_plan(TC, digraph(), query=None)
        assert choice.transforms == ()

    def test_choice_is_deterministic(self):
        db = digraph()
        first = choose_plan(TC, db, query=BOUND)
        second = choose_plan(TC, db, query=BOUND)
        assert first.fingerprint == second.fingerprint
        assert first.label == second.label
        assert first.cost == second.cost

    def test_enumeration_stays_under_budget(self):
        choice = choose_plan(TC, digraph(300, 900), query=BOUND)
        assert choice.enumeration_seconds < 0.050

    def test_estimate_skips_fact_rules(self):
        program = parse_program("f0: p(a).\nr0: q(X) :- p(X).")
        candidate = PlanCandidate(program, ())
        cost, detail = estimate_program_cost(candidate, Database())
        assert cost > 0.0
        assert "r0" in detail

    def test_describe_marks_the_winner(self):
        choice = choose_plan(TC, digraph(), query=BOUND)
        text = choice.describe()
        assert "chosen:" in text
        assert f"* {choice.label}: " in text or \
            f"* {choice.label}:" in text


class TestCboEvaluation:
    def test_cbo_answers_match_magic_and_plain(self):
        db = digraph(150, 450)
        via_cbo = cbo_answers(TC, db, BOUND)
        assert via_cbo == magic_answers(TC, db, BOUND)
        plain = evaluate(TC, db).facts("reach")
        assert via_cbo == frozenset(row for row in plain
                                    if row[0] == "n0")

    def test_result_carries_the_chosen_plan(self):
        result = cbo_evaluate(TC, digraph(), query=BOUND)
        assert isinstance(result.choice, ChosenPlan)
        assert result.method == "seminaive+cbo"
        if any(t.startswith("magic[") for t in result.choice.transforms):
            assert result.magic is not None

    def test_whole_program_cbo_is_bit_identical_to_adaptive(self):
        db = digraph()
        adaptive = evaluate(TC, db, planner="adaptive")
        cbo = evaluate(TC, db, planner="cbo")
        assert cbo.facts("reach") == adaptive.facts("reach")
        assert cbo.stats.as_dict() == adaptive.stats.as_dict()

    def test_vectorized_cbo_is_bit_identical_to_adaptive(self):
        db = digraph()
        kwargs = dict(executor="vectorized", interning="on")
        adaptive = evaluate(TC, db, planner="adaptive", **kwargs)
        cbo = evaluate(TC, db, planner="cbo", **kwargs)
        assert cbo.facts("reach") == adaptive.facts("reach")
        assert cbo.stats.as_dict() == adaptive.stats.as_dict()

    def test_cbo_with_ics_enumerates_residues(self):
        example = load("example_4_3")
        choice = choose_plan(example.program, Database(),
                             ics=example.ics)
        assert isinstance(choice, ChosenPlan)
        seen = [label for _, label, _ in choice.table]
        assert any(label.startswith("residues[") for label in seen)

    def test_explain_answer_follows_the_rewritten_program(self):
        db = chain_db(8)
        result = cbo_evaluate(TC, db, query=BOUND)
        goal = Atom("reach", (Constant("n0"), Constant("n3")))
        derivation = explain_answer(result, goal)
        assert derivation is not None
        assert derivation.depth() >= 2


class TestKernelChoice:
    def test_narrow_frontier_chooses_row(self):
        db = chain_db(5)
        cache = KernelCache(symbols=db.symbols)
        kernel = cache.kernel(TC.rules[1], None, lambda a, i: 5)
        choice = kernel_chooser(TC, db)(kernel)
        assert choice.mode == "row"
        assert not choice.use_batch
        assert "row-at-a-time" in choice.reason

    def test_wide_frontier_chooses_batch(self):
        db = digraph(400, 1400)
        cache = KernelCache(symbols=db.symbols)
        kernel = cache.kernel(TC.rules[1], None, lambda a, i: 1400)
        choice = kernel_chooser(TC, db)(kernel)
        assert choice.mode == "batch"
        assert choice.use_batch
        assert choice.width >= MIN_BATCH_WIDTH

    def test_predicted_width_uses_sqrt_of_largest_relation(self):
        db = digraph(400, 1400)
        width = predicted_frontier_width(TC.rules[1], TC, db)
        assert 1.0 <= width <= 1400
        assert width == pytest.approx(1400 ** 0.5, rel=0.01)

    def test_explain_kernels_shows_the_rationale(self):
        text = explain_kernels(TC, chain_db(5), planner="cbo",
                               executor="vectorized")
        assert "chosen by the optimizer" in text
        assert "predicted frontier width" in text

    def test_explain_kernels_other_planners_unchanged(self):
        text = explain_kernels(TC, chain_db(5), planner="adaptive",
                               executor="vectorized")
        assert "chosen by the optimizer" not in text


class TestVectorizedDriftReplans:
    """Satellite: adaptive-drift replanning under the vectorized
    executor — replans happen, stay bounded, and change no counter."""

    def test_replans_surface_under_vectorized(self):
        result = evaluate(TC, chain_db(40), planner="adaptive",
                          executor="vectorized", interning="on")
        assert result.stats.replans >= 1
        assert result.stats.replans <= 16  # default max_replans cap

    def test_vectorized_replans_match_compiled_exactly(self):
        db = chain_db(40)
        compiled = evaluate(TC, db, planner="adaptive")
        vectorized = evaluate(TC, db, planner="adaptive",
                              executor="vectorized", interning="on")
        assert vectorized.facts("reach") == compiled.facts("reach")
        assert vectorized.stats.as_dict() == compiled.stats.as_dict()

    def test_cbo_replan_reenters_kernel_choice(self):
        db = chain_db(40)
        adaptive = evaluate(TC, db, planner="adaptive",
                            executor="vectorized", interning="on")
        cbo = evaluate(TC, db, planner="cbo",
                       executor="vectorized", interning="on")
        assert cbo.stats.replans == adaptive.stats.replans >= 1
        assert cbo.stats.as_dict() == adaptive.stats.as_dict()
        assert cbo.facts("reach") == adaptive.facts("reach")


class TestOptimizerBenchGate:
    def _report(self, **overrides):
        entry = {
            "name": "bound_tc",
            "rewrite_matters": True,
            "chosen": {"label": "magic[bf]"},
            "enumeration_ms": 2.0,
            "adaptive": {"wall_ms": 10.0},
            "cbo": {"wall_ms": 4.0},
            "speedup": 2.5,
            "agreement": {"answers_agree": True},
        }
        entry.update(overrides)
        return {"version": 1, "repeats": 3, "workloads": [entry]}

    def test_clean_report_passes(self):
        from repro.bench.optimizer_bench import regression_failures
        assert regression_failures(self._report(),
                                   min_cbo_speedup=1.1) == []

    def test_too_few_repeats_fail(self):
        from repro.bench.optimizer_bench import regression_failures
        report = self._report()
        report["repeats"] = 1
        assert any("repeats" in f for f in regression_failures(report))

    def test_disagreement_fails(self):
        from repro.bench.optimizer_bench import regression_failures
        report = self._report(agreement={"answers_agree": False})
        assert any("disagree" in f for f in regression_failures(report))

    def test_slow_enumeration_fails(self):
        from repro.bench.optimizer_bench import regression_failures
        report = self._report(enumeration_ms=75.0)
        assert any("enumeration" in f
                   for f in regression_failures(report))

    def test_speedup_floor_fails_when_missed(self):
        from repro.bench.optimizer_bench import regression_failures
        report = self._report(speedup=1.01)
        failures = regression_failures(report, min_cbo_speedup=1.1)
        assert any("floor" in f for f in failures)

    def test_unknown_scale_raises(self):
        from repro.bench.optimizer_bench import build_workloads
        with pytest.raises(ValueError, match="unknown scale"):
            build_workloads("galactic")
