"""Tests for the empirical-equivalence utilities."""

import pytest

from repro.constraints import ic_from_text, satisfies
from repro.core.equivalence import (check_equivalent, make_consistent,
                                    random_consistent_databases,
                                    random_database)
from repro.datalog import parse_program
from repro.facts import Database


class TestRandomDatabase:
    def test_schema_respected(self, rng):
        db = random_database({"p": 2, "q": 1}, 5, 10, rng)
        assert db.relation("p").arity == 2
        assert db.relation("q").arity == 1
        assert len(db.relation("p")) <= 10

    def test_numeric_columns(self, rng):
        db = random_database({"p": 2}, 5, 10, rng,
                             numeric_columns={"p": [1]}, max_value=9)
        for sym, num in db.facts("p"):
            assert isinstance(sym, str)
            assert isinstance(num, int) and 1 <= num <= 9


class TestMakeConsistent:
    def test_repairs_fact_ic_by_adding(self, rng):
        ic = ic_from_text("boss(E, B) -> experienced(B).")
        db = random_database({"boss": 2}, 4, 8, rng)
        make_consistent(db, [ic])
        assert satisfies(db, ic)
        assert len(db.facts("experienced")) > 0

    def test_repairs_denial_by_deleting(self, rng):
        ic = ic_from_text("p(X, N), N > 50 -> .")
        db = random_database({"p": 2}, 4, 20, rng,
                             numeric_columns={"p": [1]}, max_value=100)
        make_consistent(db, [ic])
        assert satisfies(db, ic)
        assert all(n <= 50 for _, n in db.facts("p"))

    def test_interacting_ics(self, rng):
        add = ic_from_text("works_with(A, B), expert(B, F) -> expert(A, F).")
        deny = ic_from_text("expert(X, f0), expert(X, f1) -> .")
        db = random_database({"works_with": 2, "expert": 2}, 4, 8, rng)
        make_consistent(db, [add, deny])
        assert satisfies(db, add, deny)

    def test_batch_helper(self, rng):
        ic = ic_from_text("p(X, Y) -> q(Y).")
        batch = random_consistent_databases({"p": 2, "q": 1}, [ic], 3,
                                            rng)
        assert len(batch) == 3
        assert all(satisfies(db, ic) for db in batch)


class TestCheckEquivalent:
    def test_detects_difference(self, tc_program, chain_db):
        weaker = parse_program("reach(X, Y) :- edge(X, Y).")
        counterexample = check_equivalent(tc_program, weaker, "reach",
                                          [chain_db])
        assert counterexample is not None
        assert counterexample.only_first  # the closure tuples
        assert not counterexample.only_second
        assert "disagree" in str(counterexample)

    def test_passes_for_equal_programs(self, tc_program, chain_db):
        right_linear = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
        """)
        assert check_equivalent(tc_program, right_linear, "reach",
                                [chain_db]) is None

    def test_empty_batch_trivially_passes(self, tc_program):
        weaker = parse_program("reach(X, Y) :- edge(X, Y).")
        assert check_equivalent(tc_program, weaker, "reach", []) is None
