"""Tests for the dataflow analysis (``repro.analysis.dataflow``) and
its engine integrations: dead-rule pruning, provably-true check elision
in the vectorized executor, and cold-statistics planner seeding."""

import pytest

from repro.analysis.dataflow import (ANY_NUMBER, BOTTOM, INF, MAX_CONSTS,
                                     TOP, Domain, analyze_dataflow,
                                     consts_domain, interval_domain, join,
                                     kinds_domain, meet)
from repro.datalog import parse_program
from repro.datalog.parser import parse_query
from repro.engine import evaluate
from repro.engine.plan import plan_rule
from repro.facts import Database

TC = """
b0: p(X, Y) :- e(X, Y).
r0: p(X, Z) :- p(X, Y), e(Y, Z).
"""


def tc_db():
    db = Database()
    for pair in ((1, 2), (2, 3), (3, 4)):
        db.add_fact("e", *pair)
    return db


# ---------------------------------------------------------------------------
# the domain lattice
# ---------------------------------------------------------------------------

class TestLattice:
    def test_consts_canonical_and_bounded(self):
        assert consts_domain(()) is BOTTOM or consts_domain(()).is_bottom
        small = consts_domain(range(MAX_CONSTS))
        assert small.form == "consts"
        wide = consts_domain(range(MAX_CONSTS + 1))
        assert wide.form == "interval"
        assert wide.lo == 0 and wide.hi == MAX_CONSTS and wide.integral

    def test_mixed_kind_overflow_goes_to_kinds(self):
        values = list(range(MAX_CONSTS)) + ["a", "b"]
        wide = consts_domain(values)
        assert wide == TOP

    def test_kinds_number_canonicalizes_to_interval(self):
        assert kinds_domain({"number"}) == ANY_NUMBER

    def test_join_is_upper_bound(self):
        a = consts_domain({1, 2})
        b = consts_domain({"x"})
        joined = join(a, b)
        for value in (1, 2, "x"):
            assert value in joined.consts
        assert join(a, BOTTOM) == a
        assert join(BOTTOM, b) == b

    def test_join_numeric_hulls(self):
        a = interval_domain(0, 5, integral=True)
        b = consts_domain({9})
        joined = join(a, b)
        assert joined.form == "interval"
        assert (joined.lo, joined.hi, joined.integral) == (0, 9, True)

    def test_meet_is_lower_bound(self):
        a = consts_domain({1, 2, 3})
        b = interval_domain(2, 9)
        met = meet(a, b)
        assert met.consts == frozenset({2, 3})
        assert meet(a, consts_domain({"x"})).is_bottom
        assert meet(TOP, a) == a

    def test_meet_interval_interval(self):
        met = meet(interval_domain(0, 5), interval_domain(3, 9,
                                                          integral=True))
        assert (met.lo, met.hi, met.integral) == (3, 5, True)
        assert meet(interval_domain(0, 1), interval_domain(2, 3)).is_bottom

    def test_integral_interval_size_is_exact(self):
        assert interval_domain(3, 7, integral=True).size() == 5.0
        assert interval_domain(3, 7).size() == INF
        assert BOTTOM.size() == 0.0
        assert consts_domain({1, "a"}).size() == 2.0

    def test_render_forms(self):
        assert BOTTOM.render() == "empty"
        assert TOP.render() == "any"
        assert "int" in interval_domain(0, 4, integral=True).render()

    def test_lattice_order_sanity(self):
        # join(a, b) must contain everything meet(a, b) contains.
        samples = [BOTTOM, TOP, ANY_NUMBER, consts_domain({1, 2}),
                   consts_domain({"a"}), interval_domain(0, 10, True),
                   kinds_domain({"string"})]
        for a in samples:
            for b in samples:
                up = join(a, b)
                down = meet(a, b)
                assert down.size() <= up.size() or up.size() == INF
                assert join(a, a) == a
                assert meet(a, a) == a


# ---------------------------------------------------------------------------
# the whole-program analysis
# ---------------------------------------------------------------------------

class TestAnalyzeDataflow:
    def test_tc_domains_and_bounds(self):
        flow = analyze_dataflow(parse_program(TC), edb=tc_db())
        assert flow.columns["p"][0].consts == frozenset({1, 2, 3})
        assert flow.columns["p"][1].consts == frozenset({2, 3, 4})
        assert flow.size_bound("e") == 3.0
        assert flow.size_bound("p") == 9.0  # 3 distinct x 3 distinct
        assert flow.converged

    def test_probe_estimate_divides_by_distincts(self):
        flow = analyze_dataflow(parse_program(TC), edb=tc_db())
        assert flow.probe_estimate("p", ()) == 9.0
        assert flow.probe_estimate("p", (0,)) == 3.0
        assert flow.probe_estimate("p", (0, 1)) == 1.0

    def test_lint_mode_defaults_to_top(self):
        flow = analyze_dataflow(parse_program(TC))
        assert flow.columns["e"][0] == TOP
        assert flow.size_bound("p") == INF

    def test_unsat_comparison_kills_rule_and_predicate(self):
        program = parse_program(
            "d0: dead(X) :- e(X, Y), X = 1, X > 5.\n"
            "c0: chained(X) :- dead(X).\n")
        flow = analyze_dataflow(program, edb=tc_db())
        assert {"dead", "chained"} <= flow.empty
        assert len(flow.dead_rules) == 2
        assert len(flow.unsat) == 1
        assert flow.unsat[0].rule.label == "d0"

    def test_provably_true_check_recorded(self):
        program = parse_program("t0: t(X) :- e(X, Y), X < 100.\n")
        flow = analyze_dataflow(program, edb=tc_db())
        (rule,) = program
        assert flow.true_checks.get(rule) == frozenset({1})
        assert "t" not in flow.empty

    def test_self_refinement_never_proves_a_check_true(self):
        # X = 1 narrows X's domain to {1}; using that refinement to
        # prove the comparison itself would be circular and unsound.
        program = parse_program("s0: s(X) :- e(X, Y), X = 1.\n")
        flow = analyze_dataflow(program, edb=tc_db())
        (rule,) = program
        assert 1 not in flow.true_checks.get(rule, frozenset())

    def test_adornments_seeded_from_query(self):
        program = parse_program(TC)
        query = next(lit for lit in parse_query("p(1, Y)").literals)
        flow = analyze_dataflow(program, edb=tc_db(), query=query)
        assert "bf" in flow.adornments["p"]
        assert flow.adorned_bounds[("p", "bf")] == 3.0

    def test_free_query_adorns_all_free(self):
        flow = analyze_dataflow(parse_program(TC), edb=tc_db())
        assert flow.adornments["p"] == ("ff",)

    def test_nonlinear_recursion_unbounded_without_edb(self):
        program = parse_program(
            "s0: sg(X, Y) :- flat(X, Y).\n"
            "s1: sg(X, Y) :- up(X, A), sg(A, B), sg(B, C), down(C, Y).\n")
        flow = analyze_dataflow(program)
        assert flow.size_bound("sg") == INF

    def test_arithmetic_head_stays_sound(self):
        # Z = X + 1 meets back into e's column domain, so the fixpoint
        # converges to the exact value set without widening to inf.
        program = parse_program(
            "g0: grow(X) :- e2(X, Y).\n"
            "g1: grow(Z) :- grow(X), e2(X, Y), Z = X + 1.\n")
        db = Database()
        for pair in ((0, 1), (1, 2), (2, 3), (3, 0)):
            db.add_fact("e2", *pair)
        flow = analyze_dataflow(program, edb=db)
        hull = flow.columns["grow"][0].numeric_hull()
        assert hull[0] == 0 and hull[1] == 4 and hull[2]
        result = evaluate(program, db)
        values = {row[0] for row in result.facts("grow")}
        assert values == {0, 1, 2, 3, 4}
        for value in values:
            assert flow.columns["grow"][0].lo <= value \
                <= flow.columns["grow"][0].hi \
                if flow.columns["grow"][0].form == "interval" else True

    def test_render_mentions_every_predicate(self):
        flow = analyze_dataflow(parse_program(TC), edb=tc_db())
        text = flow.render()
        assert "p/2" in text and "e/2" in text and "size bound" in text


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------

DEADLY = """
b0: p(X, Y) :- e(X, Y).
r0: p(X, Z) :- p(X, Y), e(Y, Z).
d0: junk(X) :- e(X, Y), X = 1, X > 5.
t0: low(X) :- e(X, Y), X < 100.
"""

COMBOS = [
    {"executor": "compiled"},
    {"executor": "interpreted"},
    {"executor": "compiled", "planner": "adaptive"},
    {"executor": "compiled", "method": "naive"},
    {"executor": "vectorized", "interning": "on"},
    {"executor": "vectorized", "interning": "on", "planner": "adaptive"},
    {"executor": "parallel", "shards": 2, "parallel_mode": "serial"},
]


class TestEvaluateWithDataflow:
    @pytest.mark.parametrize("combo", COMBOS,
                             ids=[str(sorted(c.items())) for c in COMBOS])
    def test_fact_and_counter_parity(self, combo):
        program = parse_program(DEADLY)
        baseline = evaluate(program, tc_db(), **combo)
        flowed = evaluate(program, tc_db(), dataflow="on", **combo)
        for pred in ("p", "junk", "low"):
            assert flowed.facts(pred) == baseline.facts(pred)
        assert flowed.count("junk") == 0
        base = baseline.stats.as_dict()
        flow = flowed.stats.as_dict()
        assert flow["derivations"] == base["derivations"]
        assert flow["duplicate_derivations"] == \
            base["duplicate_derivations"]

    def test_dead_rule_not_fired(self):
        program = parse_program(DEADLY)
        baseline = evaluate(program, tc_db())
        flowed = evaluate(program, tc_db(), dataflow="on")
        assert flowed.stats.rules_fired < baseline.stats.rules_fired

    def test_vectorized_true_check_skips_but_counts(self):
        # The t0 rule's X < 100 check is provably true; the batch
        # kernel drops the condition but the counter accounting must
        # stay bit-identical.  (No dead rules here: those legitimately
        # shed their own counter contributions when skipped.)
        program = parse_program(
            "b0: p(X, Y) :- e(X, Y).\n"
            "r0: p(X, Z) :- p(X, Y), e(Y, Z).\n"
            "t0: low(X) :- e(X, Y), X < 100.\n")
        combo = {"executor": "vectorized", "interning": "on"}
        baseline = evaluate(program, tc_db(), **combo)
        flow = analyze_dataflow(program, edb=tc_db())
        (t0,) = [r for r in program if r.label == "t0"]
        assert flow.true_checks.get(t0)
        flowed = evaluate(program, tc_db(), dataflow="on", **combo)
        assert flowed.stats.as_dict() == baseline.stats.as_dict()
        assert flowed.facts("low") == baseline.facts("low")

    def test_unknown_mode_rejected(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate(parse_program(TC), tc_db(), dataflow="sometimes")


class TestPlannerSeeding:
    """Cold statistics: the adaptive planner consumes static bounds."""

    def recursive_rule(self, program):
        return next(rule for rule in program
                    if rule.label == "r0")

    def test_cold_idb_plan_changes_with_bounds(self):
        program = parse_program(TC)
        db = tc_db()
        rule = self.recursive_rule(program)
        # Without dataflow a cold (absent) IDB relation estimates 0.0
        # rows, so the planner anchors the join on p.
        cold = plan_rule(rule, program, db, planner="adaptive")
        assert cold.steps[0].literal.pred == "p"
        # The static bound says |p| <= 9 > |e| = 3: anchor on e.
        flow = analyze_dataflow(program, edb=db)
        seeded = plan_rule(rule, program, db, planner="adaptive",
                           dataflow=flow)
        assert seeded.steps[0].literal.pred == "e"
        assert [s.literal.pred for s in seeded.steps] != \
            [s.literal.pred for s in cold.steps]

    def test_seeded_estimate_is_the_static_bound(self):
        program = parse_program(TC)
        db = tc_db()
        flow = analyze_dataflow(program, edb=db)
        rule = self.recursive_rule(program)
        seeded = plan_rule(rule, program, db, planner="adaptive",
                           dataflow=flow)
        probe = next(s for s in seeded.steps if s.literal.pred == "p")
        assert probe.estimate == flow.probe_estimate(
            "p", probe.bound_columns)

    def test_greedy_planner_unaffected(self):
        program = parse_program(TC)
        db = tc_db()
        flow = analyze_dataflow(program, edb=db)
        rule = self.recursive_rule(program)
        assert plan_rule(rule, program, db, dataflow=flow).steps == \
            plan_rule(rule, program, db).steps


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------

class TestDataflowCLI:
    @pytest.fixture
    def files(self, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text(TC)
        db = tmp_path / "db.dl"
        db.write_text("e(1, 2).\ne(2, 3).\ne(3, 4).\n")
        return {"program": str(program), "db": str(db)}

    def test_explain_dataflow_prints_analysis(self, files, capsys):
        from repro.cli import main

        assert main(["explain", files["program"], files["db"],
                     "--dataflow", "--planner", "adaptive",
                     "--query", "p(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "dataflow:" in out
        assert "size bound" in out
        assert "adornments: bf" in out
        assert "distinct <=" in out

    def test_evaluate_dataflow_same_output(self, files, capsys):
        from repro.cli import main

        assert main(["evaluate", files["program"], files["db"]]) == 0
        plain = capsys.readouterr().out
        assert main(["evaluate", files["program"], files["db"],
                     "--dataflow", "on", "--planner", "adaptive"]) == 0
        assert capsys.readouterr().out == plain

    def test_lint_sarif_single_file(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad.dl"
        bad.write_text("p(X) :- e(X), X = 1, X > 5.\n")
        assert main(["lint", str(bad), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SAT001", "DEAD003", "TYPE002", "BOUND001"} <= rule_ids
        results = {r["ruleId"] for r in run["results"]}
        assert "SAT001" in results and "DEAD003" in results
        for result in run["results"]:
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == str(bad)

    def test_lint_sarif_bundled(self, capsys):
        import json

        from repro.cli import main

        assert main(["lint", "--bundled", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["tool"]["driver"]["name"]

    def test_unknown_pass_exit_code_and_suggestion(self, files, capsys):
        from repro.cli import main

        assert main(["lint", files["program"],
                     "--passes", "datflow"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis pass" in err
        assert "did you mean 'dataflow'" in err

    def test_empty_passes_rejected(self, files, capsys):
        from repro.cli import main

        assert main(["lint", files["program"], "--passes"]) == 2
        assert "at least one pass name" in capsys.readouterr().err

    def test_dataflow_pass_selection(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.dl"
        bad.write_text("p(X) :- e(X), X = 1, X > 5.\n")
        assert main(["lint", str(bad), "--passes", "dataflow"]) == 0
        out = capsys.readouterr().out
        assert "SAT001" in out and "DEAD003" in out
