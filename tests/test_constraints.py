"""Unit tests for ICs, expanded form and the satisfaction checker."""

import pytest

from repro.constraints import (IntegrityConstraint, expand, ic_from_text,
                               ics_from_text, repair, satisfies,
                               validate_ics, violations)
from repro.datalog import parse_program
from repro.datalog.atoms import atom, comparison
from repro.errors import ConstraintError
from repro.facts import Database


class TestICConstruction:
    def test_from_text(self):
        ic = ic_from_text("ic1: a(X, Y), X > 5 -> b(Y).")
        assert ic.label == "ic1"
        assert ic.head == atom("b", "Y")
        assert len(ic.database_atoms()) == 1
        assert len(ic.evaluable_atoms()) == 1

    def test_denial(self):
        ic = ic_from_text("a(X), X > 5 -> .")
        assert ic.is_denial

    def test_needs_database_atom(self):
        with pytest.raises(ConstraintError):
            IntegrityConstraint((comparison("X", ">", 1),), None)

    def test_needs_nonempty_body(self):
        with pytest.raises(ConstraintError):
            IntegrityConstraint((), atom("p", "X"))

    def test_str_roundtrip(self):
        text = "ic1: a(X, Y), X > 5 -> b(Y)."
        assert str(ic_from_text(text)) == text

    def test_ics_from_text_rejects_rules(self):
        with pytest.raises(ConstraintError):
            ics_from_text("p(X) :- q(X).")

    def test_all_literals_includes_head(self):
        ic = ic_from_text("a(X) -> b(X).")
        assert len(ic.all_literals()) == 2


class TestICShape:
    def test_connected(self):
        assert ic_from_text("a(X, Y), b(Y, Z) -> c(Z).").is_connected()
        assert not ic_from_text("a(X), b(Y) -> .").is_connected()

    def test_chain(self):
        assert ic_from_text("a(X, Y), b(Y, Z), c(Z, W) -> .").is_chain()
        # a and c share a variable: not a chain.
        assert not ic_from_text(
            "a(X, Y), b(Y, Z), c(Z, X) -> .").is_chain()
        # b and c share nothing: not a chain either.
        assert not ic_from_text("a(X, Y), b(Y, Z), c(W, V) -> .").is_chain()

    def test_single_atom_is_chain(self):
        assert ic_from_text("a(X, Y), X > 1 -> b(Y).").is_chain()

    def test_require_chain(self):
        with pytest.raises(ConstraintError):
            ic_from_text("a(X, Y), b(Y, Z), c(Z, X) -> .").require_chain()

    def test_edb_only(self, tc_program):
        good = ic_from_text("edge(X, Y) -> edge(Y, X).")
        bad = ic_from_text("reach(X, Y) -> edge(X, Y).")
        assert good.is_edb_only(tc_program)
        assert not bad.is_edb_only(tc_program)

    def test_validate_ics(self, tc_program):
        problems = validate_ics(
            [ic_from_text("reach(X, Y) -> ."),
             ic_from_text("a(X), b(Y) -> .")], tc_program)
        assert len(problems) == 2


class TestExpandedForm:
    def test_example_2_1(self, ex21):
        """The expanded form of Example 2.1's IC, exactly."""
        expanded = expand(ex21.ic("ic"))
        # Database atoms now have all-distinct variables.
        seen = set()
        for a in expanded.database_atoms:
            for arg in a.args:
                assert arg not in seen
                seen.add(arg)
        # Two equalities were introduced (V2 and V4 repeated).
        assert len(expanded.equalities) == 2
        assert all(eq.op == "=" for eq in expanded.equalities)

    def test_constants_are_lifted(self):
        expanded = expand(ic_from_text("a(X, executive) -> b(X)."))
        assert len(expanded.equalities) == 1
        assert expanded.equalities[0].rhs.value == "executive"

    def test_head_untouched(self):
        ic = ic_from_text("a(X, Y) -> b(Y, Z).")
        assert expand(ic).head == ic.head


class TestChecker:
    @pytest.fixture
    def boss_db(self):
        return Database.from_text("""
            boss(emma, bob, executive).
            boss(fred, gia, staff).
            experienced(bob).
        """)

    @pytest.fixture
    def exec_ic(self):
        return ic_from_text(
            "boss(E, B, R), R = executive -> experienced(B).")

    def test_satisfied(self, boss_db, exec_ic):
        assert satisfies(boss_db, exec_ic)

    def test_violation_found(self, boss_db, exec_ic):
        boss_db.add_fact("boss", "hal", "ina", "executive")
        assert not satisfies(boss_db, exec_ic)
        found = list(violations(exec_ic, boss_db))
        assert len(found) == 1

    def test_violations_limit(self, boss_db, exec_ic):
        boss_db.add_fact("boss", "hal", "ina", "executive")
        boss_db.add_fact("boss", "jo", "kim", "executive")
        assert len(list(violations(exec_ic, boss_db, limit=1))) == 1

    def test_denial_checking(self):
        ic = ic_from_text("p(X, Y), X = Y -> .")
        good = Database({"p": [("a", "b")]})
        bad = Database({"p": [("a", "a")]})
        assert satisfies(good, ic)
        assert not satisfies(bad, ic)

    def test_evaluable_head(self):
        ic = ic_from_text("p(X, Y) -> X < Y.")
        assert satisfies(Database({"p": [(1, 2)]}), ic)
        assert not satisfies(Database({"p": [(2, 1)]}), ic)

    def test_existential_head(self):
        ic = ic_from_text("emp(E) -> boss(E, B).")
        db = Database({"emp": [("a",)], "boss": [("a", "x")]})
        assert satisfies(db, ic)
        db2 = Database({"emp": [("a",)], "boss": [("z", "x")]})
        assert not satisfies(db2, ic)

    def test_repair_adds_facts(self, boss_db, exec_ic):
        boss_db.add_fact("boss", "hal", "ina", "executive")
        added = repair(boss_db, exec_ic)
        assert added == 1
        assert satisfies(boss_db, exec_ic)

    def test_repair_cascades(self):
        # works_with closure: repairing may enable new violations.
        ic = ic_from_text(
            "works_with(A, B), expert(B, F) -> expert(A, F).")
        db = Database({"works_with": [("a", "b"), ("b", "c")],
                       "expert": [("c", "ml")]})
        added = repair(db, ic)
        assert added == 2
        assert ("a", "ml") in db.facts("expert")

    def test_repair_rejects_denials(self):
        with pytest.raises(ConstraintError):
            repair(Database({"p": [("a",)]}), ic_from_text("p(X) -> ."))

    def test_repair_rejects_existential_heads(self):
        db = Database({"emp": [("a",)]})
        with pytest.raises(ConstraintError):
            repair(db, ic_from_text("emp(E) -> boss(E, B)."))
