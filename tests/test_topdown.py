"""Tests for the tabled top-down engine."""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import SemanticOptimizer
from repro.datalog import atom, parse_program
from repro.engine import evaluate, query_answers, topdown_query
from repro.engine.topdown import TabledEvaluator
from repro.errors import EvaluationError
from repro.facts import Database
from repro.workloads import (GenealogyParams, example_4_3,
                             generate_genealogy)


class TestBasics:
    def test_bound_query(self, tc_program, chain_db):
        result = topdown_query(tc_program, chain_db,
                               atom("reach", "a", "Y"))
        assert result.project(atom("reach", "a", "Y")) == \
            {("a", "b"), ("a", "c"), ("a", "d")}

    def test_free_query(self, tc_program, chain_db):
        goal = atom("reach", "X", "Y")
        result = topdown_query(tc_program, chain_db, goal)
        assert result.project(goal) == \
            evaluate(tc_program, chain_db).facts("reach")

    def test_fully_bound_query(self, tc_program, chain_db):
        hit = topdown_query(tc_program, chain_db,
                            atom("reach", "a", "d"))
        miss = topdown_query(tc_program, chain_db,
                             atom("reach", "d", "a"))
        assert hit.project(atom("reach", "a", "d"))
        assert not miss.project(atom("reach", "d", "a"))

    def test_repeated_variable_query(self, tc_program):
        db = Database({"edge": [("a", "b"), ("b", "a"), ("c", "d")]})
        goal = atom("reach", "X", "X")
        result = topdown_query(tc_program, db, goal)
        assert result.project(goal) == {("a", "a"), ("b", "b")}

    def test_cyclic_data_terminates(self, tc_program):
        db = Database({"edge": [("a", "b"), ("b", "a")]})
        goal = atom("reach", "a", "Y")
        result = topdown_query(tc_program, db, goal)
        assert result.project(goal) == {("a", "a"), ("a", "b")}

    def test_comparisons_prune_early(self, chain_db):
        program = parse_program("""
            r0: big(X, Y) :- edge(X, Y), X != a.
        """)
        goal = atom("big", "a", "Y")
        result = topdown_query(program, chain_db, goal)
        assert not result.project(goal)
        # The comparison refuted the rule before touching edge.
        assert result.stats.atom_lookups == 0

    def test_right_linear_program(self, chain_db):
        program = parse_program("""
            r0: reach(X, Y) :- edge(X, Y).
            r1: reach(X, Y) :- edge(X, Z), reach(Z, Y).
        """)
        goal = atom("reach", "a", "Y")
        result = topdown_query(program, chain_db, goal)
        assert result.project(goal) == \
            {("a", "b"), ("a", "c"), ("a", "d")}

    def test_negation_rejected(self, chain_db):
        program = parse_program("p(X) :- node(X), not edge(X, X).")
        with pytest.raises(EvaluationError):
            topdown_query(program, chain_db, atom("p", "X"))

    def test_unsafe_rule_rejected(self, chain_db):
        program = parse_program("p(X) :- edge(X, Y), Z > 3.")
        with pytest.raises(EvaluationError):
            topdown_query(program, chain_db, atom("p", "X"))

    def test_evaluator_reuses_tables(self, tc_program, chain_db):
        evaluator = TabledEvaluator(tc_program, chain_db)
        first = evaluator.query(atom("reach", "a", "Y"))
        lookups_after_first = evaluator.stats.atom_lookups
        second = evaluator.query(atom("reach", "a", "Y"))
        assert second.answers == first.answers
        # The completed table answers without re-deriving.
        assert evaluator.stats.derivations == first.stats.derivations


class TestBoundQueriesDoLessWork:
    def test_disconnected_components(self, tc_program):
        db = Database()
        for i in range(15):
            db.add_fact("edge", f"a{i}", f"a{i + 1}")
            db.add_fact("edge", f"b{i}", f"b{i + 1}")
        bound = topdown_query(tc_program, db, atom("reach", "a0", "Y"))
        free = topdown_query(tc_program, db, atom("reach", "X", "Y"))
        assert bound.stats.derivations < free.stats.derivations


class TestAgainstBottomUp:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=0, max_size=14),
           st.integers(0, 5))
    def test_property_bound_first_argument(self, pairs, start):
        program = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """)
        db = Database()
        db.ensure("edge", 2)
        for a, b in pairs:
            db.add_fact("edge", f"n{a}", f"n{b}")
        goal = atom("reach", f"n{start}", "Y")
        assert topdown_query(program, db, goal).project(goal) == \
            query_answers(program, db, goal)


class TestPruningPayoff:
    def test_young_ancestor_query_is_cheaper_when_pruned(self):
        example = example_4_3()
        optimized = SemanticOptimizer(
            example.program, [example.ic("ic1")]).optimize().optimized
        db = generate_genealogy(
            GenealogyParams(generations=7, width=10,
                            young_fraction=0.8), random.Random(5))
        young = sorted({(y, ya) for (_, _, y, ya) in db.facts("par")
                        if ya <= 50})[0]
        goal = atom("anc", "X", "Xa", young[0], young[1])
        plain = topdown_query(example.program, db, goal)
        pruned = topdown_query(optimized, db, goal)
        assert plain.project(goal) == pruned.project(goal)
        assert pruned.stats.rows_matched < plain.stats.rows_matched
