"""Integration tests for the evaluation engines."""

import random

import pytest

from repro.datalog import atom, parse_program
from repro.engine import (consistent_answers, evaluate, magic_answers,
                          naive_evaluate, query_answers,
                          seminaive_evaluate, stratify)
from repro.engine.bindings import EvalStats
from repro.errors import EvaluationError
from repro.facts import Database
from tests.conftest import tc_closure


class TestTransitiveClosure:
    def test_chain(self, tc_program, chain_db):
        result = evaluate(tc_program, chain_db)
        assert result.facts("reach") == tc_closure(
            {("a", "b"), ("b", "c"), ("c", "d")})

    def test_diamond_dedup(self, tc_program, diamond_db):
        result = evaluate(tc_program, diamond_db)
        assert ("a", "d") in result.facts("reach")
        assert result.count("reach") == 5

    def test_naive_equals_seminaive(self, tc_program, rng):
        for _ in range(10):
            db = Database()
            nodes = rng.randint(2, 9)
            for _ in range(rng.randint(1, 18)):
                a, b = rng.randrange(nodes), rng.randrange(nodes)
                db.add_fact("edge", f"n{a}", f"n{b}")
            naive = evaluate(tc_program, db, method="naive")
            semi = evaluate(tc_program, db, method="seminaive")
            assert naive.facts("reach") == semi.facts("reach")

    def test_cyclic_graph_terminates(self, tc_program):
        db = Database({"edge": [("a", "b"), ("b", "a")]})
        result = evaluate(tc_program, db)
        assert result.facts("reach") == {("a", "b"), ("b", "a"),
                                         ("a", "a"), ("b", "b")}

    def test_empty_edb(self, tc_program):
        assert evaluate(tc_program, Database()).count("reach") == 0


class TestEngineFeatures:
    def test_comparisons_filter(self, chain_db):
        program = parse_program("""
            r0: big(X, Y) :- edge(X, Y), X != a.
        """)
        result = evaluate(program, chain_db)
        assert result.facts("big") == {("b", "c"), ("c", "d")}

    def test_arithmetic_in_head_via_equality(self):
        program = parse_program("next(X, Y) :- num(X), Y = X + 1.")
        db = Database({"num": [(1,), (2,)]})
        assert evaluate(program, db).facts("next") == {(1, 2), (2, 3)}

    def test_stratified_negation(self, chain_db):
        program = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- reach(X, Z), edge(Z, Y).
            unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
        """)
        db = chain_db.copy()
        for n in "abcd":
            db.add_fact("node", n)
        result = evaluate(program, db)
        assert ("d", "a") in result.facts("unreachable")
        assert ("a", "d") not in result.facts("unreachable")

    def test_non_stratifiable_rejected(self):
        program = parse_program("p(X) :- e(X), not p(X).")
        with pytest.raises(EvaluationError):
            evaluate(program, Database({"e": [("a",)]}))

    def test_stratify_orders_negation(self):
        program = parse_program("""
            a(X) :- e(X).
            b(X) :- e(X), not a(X).
            c(X) :- b(X).
        """)
        strata = stratify(program)
        index = {pred: i for i, s in enumerate(strata) for pred in s}
        assert index["a"] < index["b"] <= index["c"]

    def test_unsafe_rule_raises_at_evaluation(self):
        program = parse_program("p(X) :- e(X), Y > X.")
        with pytest.raises(EvaluationError):
            evaluate(program, Database({"e": [(1,)]}))

    def test_unknown_method(self, tc_program, chain_db):
        with pytest.raises(EvaluationError):
            evaluate(tc_program, chain_db, method="bogus")

    def test_source_planner_same_answers(self, tc_program, diamond_db):
        greedy = evaluate(tc_program, diamond_db, planner="greedy")
        source = evaluate(tc_program, diamond_db, planner="source")
        assert greedy.facts("reach") == source.facts("reach")

    def test_hook_vetoes_derivations(self, tc_program, chain_db):
        def hook(rule, binding, round_index):
            return rule.label != "r1"  # no recursive derivations

        result = evaluate(tc_program, chain_db, hook=hook)
        assert result.facts("reach") == chain_db.facts("edge")

    def test_hook_round_index(self, tc_program, chain_db):
        # The round index is a lower bound on the number of recursive
        # applications in the derivation (rules later in the init round
        # already see earlier rules' output, compressing depths).
        rounds = []

        def hook(rule, binding, round_index):
            rounds.append((rule.label, round_index))
            return True

        evaluate(tc_program, chain_db, hook=hook)
        assert ("r0", 0) in rounds
        assert max(r for _, r in rounds) >= 1
        # r0 (non-recursive) only ever fires in the init round.
        assert all(r == 0 for label, r in rounds if label == "r0")

    def test_stats_counters_populated(self, tc_program, chain_db):
        result = evaluate(tc_program, chain_db)
        stats = result.stats
        assert stats.derivations == 6
        assert stats.atom_lookups > 0
        assert stats.rule_rows.get("r1", 0) > 0
        assert stats.rows_for_rules("r") == stats.rows_matched

    def test_stats_merge(self):
        a, b = EvalStats(), EvalStats()
        a.derivations, b.derivations = 2, 3
        a.rule_rows["x"] = 1
        b.rule_rows["x"] = 2
        a.merge(b)
        assert a.derivations == 5 and a.rule_rows["x"] == 3

    def test_query_method(self, tc_program, chain_db):
        result = evaluate(tc_program, chain_db)
        assert result.query("reach(a, Y)") == {("b",), ("c",), ("d",)}

    def test_query_with_comparison(self, tc_program, chain_db):
        result = evaluate(tc_program, chain_db)
        rows = result.query("reach(X, Y), X != a")
        assert ("b", "c") in rows and all(x != "a" for x, _ in rows)


class TestQueryHelpers:
    def test_query_answers_filters_constants(self, tc_program, chain_db):
        answers = query_answers(tc_program, chain_db,
                                atom("reach", "a", "Y"))
        assert answers == {("a", "b"), ("a", "c"), ("a", "d")}

    def test_query_answers_repeated_variable(self, tc_program):
        db = Database({"edge": [("a", "b"), ("b", "a")]})
        answers = query_answers(tc_program, db, atom("reach", "X", "X"))
        assert answers == {("a", "a"), ("b", "b")}

    def test_query_answers_on_edb(self, tc_program, chain_db):
        assert query_answers(tc_program, chain_db,
                             atom("edge", "a", "Y")) == {("a", "b")}

    def test_consistent_answers(self, tc_program, chain_db):
        same = parse_program("""
            a0: reach(X, Y) :- edge(X, Y).
            a1: reach(X, Y) :- edge(X, Z), reach(Z, Y).
        """)  # right-linear variant
        assert consistent_answers([tc_program, same], chain_db, "reach")
        different = parse_program("reach(X, Y) :- edge(X, Y).")
        assert not consistent_answers([tc_program, different], chain_db,
                                      "reach")


class TestMagicSets:
    def test_bound_first_argument(self, tc_program, chain_db):
        answers = magic_answers(tc_program, chain_db,
                                atom("reach", "b", "Y"))
        assert answers == {("b", "c"), ("b", "d")}

    def test_matches_plain_on_random_graphs(self, tc_program, rng):
        for _ in range(8):
            db = Database()
            nodes = rng.randint(3, 8)
            for _ in range(rng.randint(2, 14)):
                a, b = rng.randrange(nodes), rng.randrange(nodes)
                db.add_fact("edge", f"n{a}", f"n{b}")
            query = atom("reach", "n0", "Y")
            assert magic_answers(tc_program, db, query) == \
                query_answers(tc_program, db, query)

    def test_does_less_work_on_bound_queries(self, tc_program):
        # Two disconnected chains; a bound query should never explore
        # the other component.
        db = Database()
        for i in range(20):
            db.add_fact("edge", f"a{i}", f"a{i+1}")
            db.add_fact("edge", f"b{i}", f"b{i+1}")
        from repro.engine import evaluate_with_magic
        bound = evaluate_with_magic(tc_program, db,
                                    atom("reach", "a0", "Y"))
        full = evaluate(tc_program, db)
        assert bound.stats.derivations < full.stats.derivations

    def test_all_free_query(self, tc_program, chain_db):
        answers = magic_answers(tc_program, chain_db,
                                atom("reach", "X", "Y"))
        assert answers == evaluate(tc_program, chain_db).facts("reach")

    def test_requires_idb_query(self, tc_program, chain_db):
        from repro.errors import TransformError
        with pytest.raises(TransformError):
            magic_answers(tc_program, chain_db, atom("edge", "a", "Y"))

    def test_rejects_negation(self, chain_db):
        from repro.errors import TransformError
        program = parse_program("p(X) :- node(X), not q(X). q(X) :- e(X).")
        with pytest.raises(TransformError):
            magic_answers(program, chain_db, atom("p", "a"))
