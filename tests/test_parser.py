"""Unit tests for the Prolog-like parser."""

import pytest

from repro.datalog.atoms import Atom, Comparison, Negation, atom, comparison
from repro.datalog.parser import (ParsedIC, ParsedQuery, parse_atom,
                                  parse_ic, parse_literal, parse_program,
                                  parse_query, parse_rule,
                                  parse_statements, tokenize)
from repro.datalog.rules import Rule
from repro.datalog.terms import ArithExpr, Constant, Variable
from repro.errors import ParseError


class TestTokenizer:
    def test_kinds(self):
        tokens = list(tokenize("p(X, 1) :- q. % comment"))
        kinds = [t.kind for t in tokens]
        assert kinds == ["IDENT", "PUNCT", "VAR", "PUNCT", "NUMBER",
                         "PUNCT", "PUNCT", "IDENT", "PUNCT", "EOF"]

    def test_multichar_operators(self):
        texts = [t.text for t in tokenize(":- -> <= >= != ?-")]
        assert texts[:-1] == [":-", "->", "<=", ">=", "!=", "?-"]

    def test_prolog_style_inequalities_normalized(self):
        texts = [t.text for t in tokenize("=< =>")]
        assert texts[:-1] == ["<=", ">="]

    def test_strings_with_escapes(self):
        tokens = list(tokenize("'it\\'s' \"two words\""))
        assert tokens[0].text == "it's"
        assert tokens[1].text == "two words"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            list(tokenize("'oops"))

    def test_float_vs_end_of_clause(self):
        tokens = list(tokenize("p(3.8). q(4)."))
        numbers = [t.text for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["3.8", "4"]

    def test_unknown_character(self):
        with pytest.raises(ParseError) as err:
            list(tokenize("p(X) @ q"))
        assert "@" in str(err.value)

    def test_line_numbers(self):
        tokens = list(tokenize("a.\nb."))
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2


class TestRuleParsing:
    def test_simple_rule(self):
        r = parse_rule("anc(X, Y) :- par(X, Y).")
        assert r.head == atom("anc", "X", "Y")
        assert r.body == (atom("par", "X", "Y"),)

    def test_labelled_rule(self):
        assert parse_rule("r7: p(X) :- q(X).").label == "r7"

    def test_fact(self):
        r = parse_rule("par(ann, bob).")
        assert r.is_fact
        assert r.head.args == (Constant("ann"), Constant("bob"))

    def test_comparisons_in_body(self):
        r = parse_rule("p(X) :- q(X, Y), X > Y, Y != 3.")
        assert r.evaluable_atoms() == (comparison("X", ">", "Y"),
                                       comparison("Y", "!=", 3))

    def test_negation_in_body(self):
        r = parse_rule("p(X) :- q(X), not r(X).")
        assert r.negated_atoms() == (Negation(atom("r", "X")),)

    def test_negation_of_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X), not X > 3.")

    def test_arithmetic_argument(self):
        r = parse_rule("p(X) :- q(X, Y), Y > X + 1.")
        cmp_ = r.evaluable_atoms()[0]
        assert cmp_.rhs == ArithExpr("+", Variable("X"), Constant(1))

    def test_precedence(self):
        r = parse_rule("p(X) :- q(X), X > 1 + 2 * 3.")
        rhs = r.evaluable_atoms()[0].rhs
        assert isinstance(rhs, ArithExpr) and rhs.op == "+"
        assert rhs.right == ArithExpr("*", Constant(2), Constant(3))

    def test_parenthesized_expression(self):
        r = parse_rule("p(X) :- q(X), X > (1 + 2) * 3.")
        rhs = r.evaluable_atoms()[0].rhs
        assert rhs.op == "*"

    def test_negative_number(self):
        r = parse_rule("p(X) :- q(X), X > -5.")
        assert r.evaluable_atoms()[0].rhs == Constant(-5)

    def test_zero_arity_atoms(self):
        r = parse_rule("flag :- sensor(X), X > 3.")
        assert r.head == Atom("flag", ())

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")

    def test_head_must_be_atom(self):
        with pytest.raises(ParseError):
            parse_rule("X > 3 :- q(X).")


class TestICParsing:
    def test_fact_ic(self):
        ic = parse_ic("a(X, Y), X > 5 -> b(Y).")
        assert isinstance(ic, ParsedIC)
        assert ic.head == atom("b", "Y")
        assert len(ic.body) == 2

    def test_denial_with_empty_head(self):
        ic = parse_ic("a(X), X > 5 -> .")
        assert ic.head is None

    def test_denial_with_false(self):
        ic = parse_ic("a(X) -> false.")
        assert ic.head is None

    def test_labelled(self):
        assert parse_ic("ic3: a(X) -> b(X).").label == "ic3"

    def test_evaluable_head(self):
        ic = parse_ic("a(X, Y) -> X < Y.")
        assert ic.head == comparison("X", "<", "Y")


class TestQueryParsing:
    def test_with_marker(self):
        q = parse_query("?- anc(X, Y), Y != bob.")
        assert isinstance(q, ParsedQuery)
        assert len(q.literals) == 2

    def test_marker_and_period_optional(self):
        q = parse_query("anc(X, Y)")
        assert q.literals == (atom("anc", "X", "Y"),)


class TestMixedUnits:
    def test_statement_kinds(self):
        statements = parse_statements("""
            p(X) :- e(X).
            e(a).
            ic: e(X) -> p(X).
            ?- p(X).
        """)
        kinds = [type(s).__name__ for s in statements]
        assert kinds == ["Rule", "Rule", "ParsedIC", "ParsedQuery"]

    def test_parse_program_rejects_ics(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- e(X). e(X) -> p(X).")

    def test_parse_program_roundtrip(self, tc_program):
        text = "\n".join(f"{r.label}: {r}" for r in tc_program)
        again = parse_program(text)
        assert again == tc_program


class TestSpans:
    def test_rule_span_covers_statement(self):
        r = parse_rule("anc(X, Y) :- par(X, Y).")
        assert r.span is not None
        assert (r.span.line, r.span.column) == (1, 1)
        assert r.span.end_column >= len("anc(X, Y) :- par(X, Y).")

    def test_atom_spans(self):
        r = parse_rule("anc(X, Y) :- par(X, Y).")
        assert (r.head.span.line, r.head.span.column) == (1, 1)
        body_atom = r.body[0]
        assert (body_atom.span.line, body_atom.span.column) == (1, 14)

    def test_spans_across_lines(self):
        r = parse_statements("e(a).\nanc(X, Y) :- par(X, Y).")[1]
        assert r.span.line == 2

    def test_negation_and_comparison_spans(self):
        r = parse_rule("p(X) :- q(X), not r(X), X > 3.")
        neg = r.negated_atoms()[0]
        cmp_ = r.evaluable_atoms()[0]
        assert (neg.span.line, neg.span.column) == (1, 15)
        assert (cmp_.span.line, cmp_.span.column) == (1, 25)

    def test_span_excluded_from_equality(self):
        assert parse_rule("p(X) :- q(X).") == parse_rule("  p(X) :- q(X).")

    def test_ic_and_query_spans(self):
        ic, query = parse_statements("a(X) -> b(X).\n?- a(X).")
        assert ic.span.line == 1
        assert query.span.line == 2

    def test_substitution_preserves_spans(self):
        from repro.datalog.unify import Substitution

        r = parse_rule("p(X) :- q(X).")
        ground = r.apply(Substitution({Variable("X"): Constant(1)}))
        assert ground.span == r.span
        assert ground.body[0].span == r.body[0].span


class TestParseErrorExcerpts:
    def test_error_carries_line_and_column(self):
        with pytest.raises(ParseError) as err:
            parse_rule("p(X) :- q(X)")
        assert err.value.line == 1
        assert err.value.column == 13

    def test_caret_excerpt_in_message(self):
        with pytest.raises(ParseError) as err:
            parse_rule("p(X) :- q(X)")
        text = str(err.value)
        assert "line 1" in text and "column 13" in text
        assert "p(X) :- q(X)" in text and "^" in text

    def test_excerpt_points_at_offending_token(self):
        with pytest.raises(ParseError) as err:
            parse_statements("e(a).\np(X) := q(X).")
        text = str(err.value)
        assert "line 2" in text
        gutter, caret_line = text.splitlines()[-2:]
        assert "p(X) := q(X)" in gutter
        assert caret_line.index("^") > caret_line.index("|")

    def test_unterminated_string_has_excerpt(self):
        with pytest.raises(ParseError) as err:
            list(tokenize("p('oops"))
        assert "unterminated" in str(err.value) and "^" in str(err.value)

    def test_head_must_be_atom_location(self):
        with pytest.raises(ParseError) as err:
            parse_rule("X > 3 :- q(X).")
        assert err.value.line == 1 and err.value.column == 1


class TestSingleItemHelpers:
    def test_parse_atom(self):
        assert parse_atom("par(X, 30)") == atom("par", "X", 30)

    def test_parse_atom_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("par(X), q(Y)")

    def test_parse_literal_comparison(self):
        assert parse_literal("X >= 2") == comparison("X", ">=", 2)

    def test_parse_literal_negation(self):
        assert parse_literal("not p(X)") == Negation(atom("p", "X"))
