"""Unit tests for repro.datalog.rules."""

import pytest

from repro.datalog.atoms import Negation, atom, comparison
from repro.datalog.rules import Rule, is_connected, rule
from repro.datalog.terms import Variable
from repro.datalog.unify import Substitution


@pytest.fixture
def anc_rule():
    return rule(atom("anc", "X", "Y"),
                atom("anc", "X", "Z"), atom("par", "Z", "Y"),
                label="r1")


class TestRuleBasics:
    def test_str(self, anc_rule):
        assert str(anc_rule) == "anc(X, Y) :- anc(X, Z), par(Z, Y)."

    def test_fact_str(self):
        assert str(rule(atom("p", "a"))) == "p(a)."

    def test_is_fact(self, anc_rule):
        assert rule(atom("p", "a")).is_fact
        assert not anc_rule.is_fact

    def test_constructor_validates_head(self):
        with pytest.raises(TypeError):
            rule(comparison("X", "=", 1))

    def test_constructor_validates_body(self):
        with pytest.raises(TypeError):
            rule(atom("p", "X"), "not a literal")


class TestRuleInspection:
    def test_partitions_body(self):
        r = rule(atom("h", "X"), atom("a", "X"), comparison("X", ">", 1),
                 Negation(atom("b", "X")))
        assert [a.pred for a in r.database_atoms()] == ["a"]
        assert len(r.evaluable_atoms()) == 1
        assert len(r.negated_atoms()) == 1

    def test_body_predicates_include_negated(self):
        r = rule(atom("h", "X"), atom("a", "X"), Negation(atom("b", "X")))
        assert r.body_predicates() == {"a", "b"}

    def test_variable_partitions(self, anc_rule):
        assert anc_rule.head_variables() == {Variable("X"), Variable("Y")}
        assert anc_rule.local_variables() == {Variable("Z")}

    def test_occurrences_of(self, anc_rule):
        occurrences = list(anc_rule.occurrences_of("anc"))
        assert occurrences == [(0, atom("anc", "X", "Z"))]
        assert anc_rule.count_occurrences("par") == 1
        assert anc_rule.count_occurrences("missing") == 0


class TestRuleTransforms:
    def test_apply_substitution_keeps_label(self, anc_rule):
        subst = Substitution({Variable("X"): Variable("W")})
        applied = anc_rule.apply(subst)
        assert applied.label == "r1"
        assert applied.head == atom("anc", "W", "Y")

    def test_with_body_and_head(self, anc_rule):
        new = anc_rule.with_head(atom("anc2", "X", "Y"))
        assert new.head.pred == "anc2"
        assert new.body == anc_rule.body

    def test_add_literals(self, anc_rule):
        extended = anc_rule.add_literals(comparison("X", "!=", "Y"))
        assert len(extended.body) == 3

    def test_remove_body_index(self, anc_rule):
        shorter = anc_rule.remove_body_index(1)
        assert [lit.pred for lit in shorter.database_atoms()] == ["anc"]

    def test_remove_body_index_bounds(self, anc_rule):
        with pytest.raises(IndexError):
            anc_rule.remove_body_index(5)


class TestConnectivity:
    def test_empty_and_singleton_connected(self):
        assert is_connected(())
        assert is_connected((atom("p", "X"),))

    def test_shared_variable_connects(self):
        assert is_connected((atom("a", "X", "Y"), atom("b", "Y", "Z")))

    def test_disjoint_not_connected(self):
        assert not is_connected((atom("a", "X"), atom("b", "Y")))

    def test_transitively_connected(self):
        lits = (atom("a", "X", "Y"), atom("b", "Z", "W"),
                atom("c", "Y", "Z"))
        assert is_connected(lits)

    def test_comparison_can_bridge(self):
        lits = (atom("a", "X"), comparison("X", "<", "Y"), atom("b", "Y"))
        assert is_connected(lits)

    def test_ground_literal_disconnects(self):
        assert not is_connected((atom("a", "X"), atom("b", "c")))
