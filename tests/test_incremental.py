"""Differential guarantees for incremental maintenance and serving.

The contract under test: a materialized IDB maintained through any
sequence of EDB changesets must fingerprint identically to a
from-scratch evaluation of the post-change database — across
executors, interning modes, counting and DRed strata, and through
every failure path (budget exhaustion, chaos faults, unsupported
changesets), where serving must self-heal with a full rebuild rather
than ever serving a half-maintained state.
"""

import random

import pytest

from repro.bench.incremental_bench import (_maintenance_workloads,
                                           regression_failures)
from repro.cli import main
from repro.datalog import parse_program
from repro.engine.seminaive import seminaive_evaluate
from repro.errors import (BudgetExceededError, EvaluationError,
                          IncrementalUnsupported)
from repro.facts import Database
from repro.facts.changelog import (Changeset, VersionedDatabase,
                                   random_changeset)
from repro.incremental import (Server, maintain, relation_fingerprint,
                               support_counts)
from repro.runtime import ChaosError
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosPlan
from repro.shell import run as shell_run

TC = """
r0: reach(X, Y) :- edge(X, Y).
r1: reach(X, Z) :- reach(X, Y), edge(Y, Z).
"""

NONREC = """
r0: parent(X, Y) :- father(X, Y).
r1: parent(X, Y) :- mother(X, Y).
r2: grand(X, Z) :- parent(X, Y), parent(Y, Z).
"""

NEG = """
r0: lone(X) :- person(X), not linked(X).
r1: linked(X) :- edge(X, Y).
"""


def _small_tc():
    program = parse_program(TC)
    db = Database()
    rng = random.Random(5)
    for _ in range(70):
        db.add_fact("edge", f"n{rng.randrange(40)}",
                    f"n{rng.randrange(40)}")
    return program, db


# -- the differential sweep: every bench workload, random changesets ----------

@pytest.mark.parametrize("trial", range(2))
@pytest.mark.parametrize(
    "workload", _maintenance_workloads("smoke", seed=7),
    ids=lambda w: w.name)
def test_maintenance_matches_recomputation(workload, trial):
    rng = random.Random(100 + trial)
    changeset = random_changeset(workload.edb, rng,
                                 insert_fraction=0.03,
                                 delete_fraction=0.03)
    versioned = VersionedDatabase(workload.edb.copy())
    idb = seminaive_evaluate(workload.program, versioned.db)
    counts = support_counts(workload.program, versioned.db, idb)
    versioned.apply(changeset,
                    idb_predicates=workload.program.idb_predicates)
    maintain(workload.program, versioned.db, idb,
             versioned.changes_since(0), counts=counts)
    recomputed = seminaive_evaluate(workload.program, versioned.db)
    assert relation_fingerprint(idb) == relation_fingerprint(recomputed)


@pytest.mark.parametrize("executor", ["compiled", "interpreted"])
@pytest.mark.parametrize("interning", ["off", "on"])
def test_update_stream_matches_from_scratch(executor, interning):
    program, db = _small_tc()
    if interning == "on":
        db = db.interned()
    server = Server(db)
    view = server.view(program, executor=executor)
    assert view.refresh() == "full"
    rng = random.Random(9)
    for _ in range(4):
        changeset = random_changeset(server.source.db, rng,
                                     insert_fraction=0.05,
                                     delete_fraction=0.05)
        server.apply(changeset)
        assert view.refresh() == "incremental"
        scratch = seminaive_evaluate(program, server.source.db)
        assert view.fingerprint() == relation_fingerprint(scratch)


# -- algorithm-level invariants ----------------------------------------------

def test_counting_keeps_multiply_supported_rows():
    program = parse_program(NONREC)
    db = Database({"father": [("a", "b")],
                   "mother": [("a", "b"), ("c", "b")]})
    versioned = VersionedDatabase(db)
    idb = seminaive_evaluate(program, db)
    counts = support_counts(program, db, idb)
    versioned.apply(Changeset().delete("father", ("a", "b")))
    maintain(program, db, idb, versioned.changes_since(0), counts=counts)
    # parent(a, b) still has its mother-derivation.
    assert ("a", "b") in idb.facts("parent")
    versioned.apply(Changeset().delete("mother", ("a", "b")))
    maintain(program, db, idb, versioned.changes_since(1), counts=counts)
    assert ("a", "b") not in idb.facts("parent")


def test_counts_stay_exact_across_maintenance():
    program, db = _small_tc()
    # A non-recursive projection over the recursive workload's EDB.
    program = parse_program(NONREC)
    db = Database({"father": [(f"f{i}", f"c{i % 7}") for i in range(20)],
                   "mother": [(f"c{i % 7}", f"g{i % 5}")
                              for i in range(20)]})
    versioned = VersionedDatabase(db)
    idb = seminaive_evaluate(program, db)
    counts = support_counts(program, db, idb)
    rng = random.Random(3)
    changeset = random_changeset(db, rng, insert_fraction=0.2,
                                 delete_fraction=0.2)
    versioned.apply(changeset, idb_predicates=program.idb_predicates)
    maintain(program, db, idb, versioned.changes_since(0), counts=counts)
    rebuilt = support_counts(program, db,
                             seminaive_evaluate(program, db))

    def normalized(c):
        return {pred: {row: n for row, n in counter.items() if n}
                for pred, counter in c.by_pred.items()}

    assert normalized(counts) == normalized(rebuilt)


def test_dred_rederives_alternative_paths():
    program = parse_program(TC)
    db = Database({"edge": [("a", "b"), ("b", "c"), ("a", "c")]})
    versioned = VersionedDatabase(db)
    idb = seminaive_evaluate(program, db)
    versioned.apply(Changeset().delete("edge", ("a", "c")))
    maintain(program, db, idb, versioned.changes_since(0))
    # reach(a, c) is overdeleted, then rederived via a -> b -> c.
    assert ("a", "c") in idb.facts("reach")
    versioned.apply(Changeset().delete("edge", ("b", "c")))
    maintain(program, db, idb, versioned.changes_since(1))
    assert ("a", "c") not in idb.facts("reach")


def test_negation_reachable_from_change_is_rejected():
    program = parse_program(NEG)
    db = Database({"person": [("a",), ("b",)], "edge": [("a", "b")]})
    versioned = VersionedDatabase(db)
    idb = seminaive_evaluate(program, db)
    # edge feeds linked, which occurs negated: not incremental.
    versioned.apply(Changeset().insert("edge", ("b", "a")))
    with pytest.raises(IncrementalUnsupported):
        maintain(program, db, idb, versioned.changes_since(0))


def test_person_changes_avoid_the_negation_and_maintain():
    program = parse_program(NEG)
    db = Database({"person": [("a",), ("b",)], "edge": [("a", "b")]})
    versioned = VersionedDatabase(db)
    idb = seminaive_evaluate(program, db)
    counts = support_counts(program, db, idb)
    # person reaches no negated occurrence, so this stays incremental.
    versioned.apply(Changeset().insert("person", ("c",)))
    maintain(program, db, idb, versioned.changes_since(0), counts=counts)
    assert ("c",) in idb.facts("lone")


# -- serving lifecycle --------------------------------------------------------

def test_refresh_modes_lifecycle():
    program, db = _small_tc()
    server = Server(db)
    view = server.view(program)
    assert view.refresh() == "full"
    assert view.refresh() == "fresh"
    server.apply(Changeset().insert("edge", ("x1", "x2")))
    assert view.refresh() == "incremental"
    assert view.refresh() == "fresh"
    view.invalidate()
    assert view.refresh() == "full"


def test_empty_changeset_refreshes_as_fresh():
    program, db = _small_tc()
    server = Server(db)
    view = server.view(program)
    view.refresh()
    server.apply(Changeset())  # bumps the version, changes nothing
    assert view.refresh() == "fresh"
    assert view.version == server.version


def test_unsupported_changeset_falls_back_to_full():
    program = parse_program(NEG)
    db = Database({"person": [("a",), ("b",)], "edge": [("a", "b")]})
    server = Server(db)
    view = server.view(program)
    view.refresh()
    server.apply(Changeset().insert("edge", ("b", "a")))
    assert view.refresh() == "full"
    assert view.facts("lone") == frozenset()


def test_apply_rejects_idb_changes():
    program, db = _small_tc()
    server = Server(db)
    server.view(program)
    with pytest.raises(EvaluationError, match="IDB"):
        server.apply(Changeset().insert("reach", ("a", "b")))


def test_serve_answers_track_updates():
    program, db = _small_tc()
    server = Server(db)
    before = server.serve(program, "reach(z1, X)")
    assert before == set()
    server.apply(Changeset().insert("edge", ("z1", "z2")))
    server.apply(Changeset().insert("edge", ("z2", "z3")))
    after = server.serve(program, "reach(z1, X)")
    assert {("z2",), ("z3",)} <= after


# -- failure paths: serving must self-heal ------------------------------------

def test_budget_exhaustion_mid_refresh_self_heals():
    program, db = _small_tc()
    server = Server(db)
    view = server.view(program)
    view.refresh()
    rng = random.Random(17)
    server.apply(random_changeset(server.source.db, rng,
                                  insert_fraction=0.3))
    with pytest.raises(BudgetExceededError):
        view.refresh(Budget(max_derivations=1))
    assert not view.valid
    assert view.refresh() == "full"
    scratch = seminaive_evaluate(program, server.source.db)
    assert view.fingerprint() == relation_fingerprint(scratch)


def test_chaos_fault_mid_refresh_self_heals():
    program, db = _small_tc()
    server = Server(db)
    view = server.view(program)
    view.refresh()
    rng = random.Random(23)
    server.apply(random_changeset(server.source.db, rng,
                                  insert_fraction=0.3))
    plan = ChaosPlan().fail_derivation(3)
    with plan.active():
        with pytest.raises(ChaosError):
            view.refresh()
    assert not view.valid
    assert view.refresh() == "full"
    scratch = seminaive_evaluate(program, server.source.db)
    assert view.fingerprint() == relation_fingerprint(scratch)


# -- the bench gate ----------------------------------------------------------

def _inc_report(insert_speedup=10.0, delete_speedup=5.0, repeats=3,
                agree=True):
    def mode(speedup):
        return {"speedup": speedup, "fingerprints_agree": agree}
    return {"repeats": repeats,
            "workloads": [{"name": "transitive_closure",
                           "insert": mode(insert_speedup),
                           "delete": mode(delete_speedup)}]}


class TestIncrementalGate:
    def test_passes_above_thresholds(self):
        assert regression_failures(_inc_report(), min_insert_speedup=5,
                                   min_delete_speedup=2) == []

    def test_fails_on_too_few_repeats(self):
        failures = regression_failures(_inc_report(repeats=1))
        assert failures == ["report measured with repeats=1; gates "
                            "need >= 3 for stable medians"]

    def test_fails_on_fingerprint_disagreement(self):
        failures = regression_failures(_inc_report(agree=False))
        assert len(failures) == 2
        assert all("disagrees" in f for f in failures)

    def test_fails_on_budget_exceeded(self):
        report = _inc_report()
        report["workloads"][0]["insert"] = {"budget_exceeded": True}
        failures = regression_failures(report)
        assert failures == ["transitive_closure/insert: budget exceeded"]

    def test_fails_below_insert_threshold(self):
        failures = regression_failures(_inc_report(insert_speedup=1.2),
                                       min_insert_speedup=5)
        assert failures == [
            "transitive_closure/insert: maintenance is only 1.20x "
            "faster than recomputation (required 5.00x)"]

    def test_fails_below_delete_threshold(self):
        failures = regression_failures(_inc_report(delete_speedup=0.8),
                                       min_delete_speedup=2)
        assert failures and "delete" in failures[0]

    def test_fails_on_missing_speedup_measurement(self):
        report = _inc_report()
        del report["workloads"][0]["delete"]["speedup"]
        failures = regression_failures(report, min_delete_speedup=2)
        assert failures == [
            "transitive_closure/delete: no speedup measurement"]

    def test_fails_on_missing_workload(self):
        failures = regression_failures({"repeats": 3, "workloads": []})
        assert "missing from report" in failures[-1]

    def test_thresholds_off_by_default(self):
        assert regression_failures(_inc_report(insert_speedup=0.1,
                                               delete_speedup=0.1)) == []


# -- the CLI and shell surfaces ----------------------------------------------

@pytest.fixture
def serve_files(tmp_path):
    program = tmp_path / "tc.dl"
    program.write_text(TC)
    db = tmp_path / "db.dl"
    db.write_text("edge(a, b).\nedge(b, c).\n")
    changes = tmp_path / "changes.dl"
    changes.write_text("+edge(c, d).\n-edge(a, b).\n")
    return {"program": str(program), "db": str(db),
            "changes": str(changes), "dir": tmp_path}


class TestServeCommand:
    def test_serve_reports_modes_and_reanswers(self, serve_files, capsys):
        code = main(["serve", serve_files["program"], serve_files["db"],
                     "--query", "reach(X, Y)",
                     "--update", serve_files["changes"]])
        assert code == 0
        captured = capsys.readouterr()
        assert "a\tb" in captured.out            # pre-update answer
        assert "c\td" in captured.out            # post-update answer
        assert "full" in captured.err
        assert "incremental" in captured.err

    def test_serve_describe(self, serve_files, capsys):
        assert main(["serve", serve_files["program"], serve_files["db"],
                     "--query", "reach(a, X)", "--describe"]) == 0
        assert '"views"' in capsys.readouterr().err

    def test_update_writes_post_database(self, serve_files, tmp_path,
                                         capsys):
        out = tmp_path / "post.dl"
        code = main(["update", serve_files["db"],
                     serve_files["changes"], "--out", str(out)])
        assert code == 0
        post = Database.from_text(out.read_text())
        assert ("c", "d") in post.facts("edge")
        assert ("a", "b") not in post.facts("edge")

    def test_bench_incremental_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(["bench-incremental", "--scale", "smoke",
                     "--repeats", "1", "--out", str(out)])
        assert code == 0
        import json

        report = json.loads(out.read_text())
        assert {"transitive_closure", "same_generation", "magic"} == {
            block["name"] for block in report["workloads"]}
        assert "insert" in capsys.readouterr().out


def test_shell_update_maintains_answers():
    out = shell_run([
        "reach(X, Y) :- edge(X, Y).",
        "reach(X, Z) :- reach(X, Y), edge(Y, Z).",
        "edge(a, b).",
        "?- reach(a, X).",
        ".update +edge(b, c).",
        "?- reach(a, X).",
    ])
    text = "\n".join(out)
    assert "applied +1/-0 -> v1" in text
    assert "incremental" in text
    # The second query sees the maintained closure.
    assert text.count("  b") + text.count("  c") >= 3
