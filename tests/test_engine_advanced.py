"""Engine tests beyond the paper's class: non-linear rules, multiple
same-stratum occurrences, deep recursion, zero-arity predicates."""

import pytest

from repro.datalog import parse_program
from repro.engine import evaluate
from repro.facts import Database
from tests.conftest import tc_closure


class TestNonLinearRecursion:
    """The paper restricts itself to linear rules; the engine must not."""

    def test_quadratic_transitive_closure(self, rng):
        program = parse_program("""
            t(X, Y) :- edge(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
        """)
        for _ in range(10):
            edges = set()
            db = Database()
            db.ensure("edge", 2)
            for _ in range(rng.randint(1, 16)):
                a, b = rng.randrange(7), rng.randrange(7)
                edges.add((f"n{a}", f"n{b}"))
                db.add_fact("edge", f"n{a}", f"n{b}")
            result = evaluate(program, db)
            assert result.facts("t") == tc_closure(edges)

    def test_quadratic_matches_linear(self, tc_program, rng):
        quadratic = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- reach(X, Z), reach(Z, Y).
        """)
        for _ in range(8):
            db = Database()
            db.ensure("edge", 2)
            for _ in range(rng.randint(1, 14)):
                db.add_fact("edge", f"n{rng.randrange(6)}",
                            f"n{rng.randrange(6)}")
            assert evaluate(quadratic, db).facts("reach") == \
                evaluate(tc_program, db).facts("reach")

    def test_same_generation(self, rng):
        """The classic non-linear same-generation program."""
        program = parse_program("""
            sg(X, X) :- person(X).
            sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp).
        """)
        db = Database()
        # Two siblings and their cousins.
        for child, parent in [("b1", "a"), ("b2", "a"),
                              ("c1", "b1"), ("c2", "b2")]:
            db.add_fact("par", child, parent)
        for person in ("a", "b1", "b2", "c1", "c2"):
            db.add_fact("person", person)
        result = evaluate(program, db)
        assert ("b1", "b2") in result.facts("sg")
        assert ("c1", "c2") in result.facts("sg")
        assert ("b1", "c1") not in result.facts("sg")

    def test_naive_agrees_on_nonlinear(self, rng):
        program = parse_program("""
            t(X, Y) :- edge(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
        """)
        db = Database()
        db.ensure("edge", 2)
        for _ in range(12):
            db.add_fact("edge", f"n{rng.randrange(5)}",
                        f"n{rng.randrange(5)}")
        assert evaluate(program, db, method="naive").facts("t") == \
            evaluate(program, db, method="seminaive").facts("t")


class TestMutualRecursion:
    def test_even_odd_paths(self):
        program = parse_program("""
            even(X, Y) :- start(X), X = Y.
            even(X, Y) :- odd(X, Z), edge(Z, Y).
            odd(X, Y) :- even(X, Z), edge(Z, Y).
        """)
        db = Database({"edge": [(f"n{i}", f"n{i + 1}")
                                for i in range(6)],
                       "start": [("n0",)]})
        result = evaluate(program, db)
        evens = {y for _, y in result.facts("even")}
        odds = {y for _, y in result.facts("odd")}
        assert evens == {"n0", "n2", "n4", "n6"}
        assert odds == {"n1", "n3", "n5"}


class TestScale:
    def test_deep_chain(self, tc_program):
        db = Database()
        for i in range(300):
            db.add_fact("edge", f"n{i}", f"n{i + 1}")
        result = evaluate(tc_program, db)
        assert result.count("reach") == 300 * 301 // 2

    def test_wide_fanout(self, tc_program):
        db = Database()
        for i in range(150):
            db.add_fact("edge", "hub", f"leaf{i}")
        result = evaluate(tc_program, db)
        assert result.count("reach") == 150


class TestOddShapes:
    def test_zero_arity_predicates(self):
        program = parse_program("""
            alarm :- sensor(X), X > 10.
            notify(X) :- alarm, contact(X).
        """)
        db = Database({"sensor": [(15,)], "contact": [("ops",)]})
        result = evaluate(program, db)
        assert result.facts("alarm") == {()}
        assert result.facts("notify") == {("ops",)}

    def test_zero_arity_false(self):
        program = parse_program("""
            alarm :- sensor(X), X > 10.
        """)
        db = Database({"sensor": [(5,)]})
        assert evaluate(program, db).facts("alarm") == frozenset()

    def test_constants_in_rule_bodies(self, chain_db):
        program = parse_program("""
            from_a(Y) :- edge(a, Y).
        """)
        assert evaluate(program, chain_db).facts("from_a") == {("b",)}

    def test_cartesian_product_rule(self):
        program = parse_program("pair(X, Y) :- left(X), right(Y).")
        db = Database({"left": [("a",), ("b",)],
                       "right": [(1,), (2,)]})
        assert evaluate(program, db).count("pair") == 4

    def test_idb_feeding_idb_across_strata(self, chain_db):
        program = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- reach(X, Z), edge(Z, Y).
            far(X, Y) :- reach(X, Y), not edge(X, Y).
        """)
        result = evaluate(program, chain_db)
        assert result.facts("far") == {("a", "c"), ("a", "d"),
                                       ("b", "d")}

    def test_duplicate_rule_is_harmless(self, chain_db):
        program = parse_program("""
            r0: reach(X, Y) :- edge(X, Y).
            r1: reach(X, Y) :- edge(X, Y).
        """)
        assert evaluate(program, chain_db).count("reach") == 3
