"""Tests for Algorithm 4.1 (isolation) — structure and Theorem 4.1."""

import random

import pytest

from repro.core import check_equivalent, isolate
from repro.core.equivalence import random_database
from repro.datalog import parse_program
from repro.errors import TransformError


class TestStructure:
    def test_trivial_for_length_one(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1",))
        assert isolation.program == ex43.program
        assert isolation.alpha_labels == ("r1",)
        assert isolation.p_names == () and isolation.q_names == ()

    def test_aux_predicates_created(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1", "r1", "r1"))
        assert isolation.p_names == ("anc__p1", "anc__p2")
        assert isolation.q_names == ("anc__q1", "anc__q2")
        assert len(isolation.alpha_labels) == 3

    def test_alpha_chain_heads_and_calls(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1", "r1", "r1"))
        alpha1 = isolation.alpha_rule(0)
        alpha2 = isolation.alpha_rule(1)
        alpha3 = isolation.alpha_rule(2)
        assert alpha1.head.pred == "anc"
        assert "anc__p1" in alpha1.body_predicates()
        assert alpha2.head.pred == "anc__p1"
        assert "anc__p2" in alpha2.body_predicates()
        assert alpha3.head.pred == "anc__p2"
        assert "anc" in alpha3.body_predicates()  # p_k = p

    def test_step5_alignment(self, ex43):
        """The alpha-rule heads carry the caller's argument tuple."""
        isolation = isolate(ex43.program, "anc", ("r1", "r1"))
        alpha1, alpha2 = (isolation.alpha_rule(0), isolation.alpha_rule(1))
        call = [lit for lit in alpha1.body
                if lit.pred == "anc__p1"][0]
        assert alpha2.head.args == call.args

    def test_beta_rules_divert_to_q(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1", "r1"))
        betas = [r for r in isolation.program
                 if r.label and "beta" in r.label]
        assert len(betas) == 1
        assert "anc__q1" in betas[0].body_predicates()

    def test_gamma_rules_exclude_matched_rule(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1", "r1"))
        gammas = [r for r in isolation.program
                  if r.label and "gamma" in r.label]
        # q1's rules are copies of every rule except r1 -> only r0.
        assert len(gammas) == 1
        assert gammas[0].head.pred == "anc__q1"
        assert gammas[0].body[0].pred == "par"

    def test_original_rules_for_other_predicates_kept(self, ex32):
        isolation = isolate(ex32.program, "eval", ("r1", "r1"))
        assert isolation.program.rule("r2").head.pred == "eval_support"

    def test_exit_terminated_sequence(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1", "r0"))
        last = isolation.alpha_rule(1)
        assert last.head.pred == "anc__p1"
        assert last.body_predicates() == {"par"}  # no recursive call

    def test_empty_sequence_rejected(self, ex43):
        with pytest.raises(TransformError):
            isolate(ex43.program, "anc", ())


class TestTheorem41:
    """Equivalence of the transformed program, checked empirically."""

    @pytest.mark.parametrize("sequence", [
        ("r1", "r1"), ("r1", "r1", "r1"), ("r1", "r0"),
        ("r1", "r1", "r0"),
    ])
    def test_genealogy_sequences(self, ex43, rng, sequence):
        isolation = isolate(ex43.program, "anc", sequence)
        dbs = [random_database({"par": 4}, 6, 14, rng,
                               numeric_columns={"par": [1, 3]})
               for _ in range(6)]
        assert check_equivalent(ex43.program, isolation.program, "anc",
                                dbs) is None

    def test_university(self, ex32, rng):
        isolation = isolate(ex32.program, "eval", ("r1", "r1"))
        dbs = [random_database(
            {"super": 3, "works_with": 2, "expert": 2, "field": 2},
            6, 10, rng) for _ in range(6)]
        for pred in ("eval", "eval_support"):
            assert check_equivalent(ex32.program, isolation.program,
                                    pred, dbs) is None

    def test_organization_four_levels(self, ex41, rng):
        isolation = isolate(ex41.program, "triple",
                            ("r2", "r2", "r2", "r2"))
        dbs = [random_database(
            {"same_level": 3, "boss": 3, "experienced": 1}, 5, 10, rng)
            for _ in range(5)]
        assert check_equivalent(ex41.program, isolation.program,
                                "triple", dbs) is None

    def test_abstract_chain_program(self, ex21, rng):
        isolation = isolate(ex21.program, "p", ("r0", "r0", "r0"))
        dbs = [random_database({"a": 3, "b": 2, "c": 3, "d": 2, "e": 6},
                               4, 8, rng) for _ in range(4)]
        assert check_equivalent(ex21.program, isolation.program, "p",
                                dbs) is None

    def test_two_recursive_rules(self, rng):
        """A program with two distinct recursive rules: the gamma rules
        must route the unmatched rule back to p."""
        program = parse_program("""
            r0: path(X, Y) :- edge(X, Y).
            r1: path(X, Y) :- path(X, Z), edge(Z, Y).
            r2: path(X, Y) :- path(X, Z), jump(Z, Y).
        """)
        isolation = isolate(program, "path", ("r1", "r1"))
        gammas = {r.label for r in isolation.program
                  if r.label and "gamma" in r.label}
        assert gammas == {"path__gamma2_r0", "path__gamma2_r2"}
        dbs = [random_database({"edge": 2, "jump": 2}, 5, 8, rng)
               for _ in range(6)]
        assert check_equivalent(program, isolation.program, "path",
                                dbs) is None
