"""Tests for the evaluation-paradigm baselines."""

import pytest

from repro.baselines import (ResidueGuidedEngine, guided_evaluate,
                             optimize_rule_level)
from repro.core import SemanticOptimizer
from repro.core.equivalence import make_consistent, random_database
from repro.engine import evaluate


class TestRuleLevelOptimizer:
    def test_blind_to_sequence_residues(self, ex32):
        report = optimize_rule_level(ex32.program, [ex32.ic("ic1")],
                                     pred="eval")
        # ic1's residue lives on r1 r1: invisible at rule level.
        assert not report.changed
        assert report.optimized == ex32.program

    def test_still_handles_rule_level_introduction(self, ex32):
        report = optimize_rule_level(ex32.program, [ex32.ic("ic2")],
                                     pred="eval",
                                     small_relations={"doctoral"})
        assert report.changed
        assert report.applied_steps[0].sequence == ("r2",)

    def test_sequence_residues_method_is_empty(self, ex32):
        from repro.baselines.rule_residues import RuleLevelOptimizer
        optimizer = RuleLevelOptimizer(ex32.program, [ex32.ic("ic1")],
                                       pred="eval")
        assert optimizer.sequence_residues() == []
        assert all(len(i.sequence) == 1 for i in optimizer.all_residues())


class TestGuidedEngine:
    def test_attaches_sequence_guards(self, ex43):
        engine = ResidueGuidedEngine(ex43.program, [ex43.ic("ic1")],
                                     pred="anc")
        assert engine.attached_guards >= 1
        guards = engine.guards_for("r1")
        assert guards
        condition, min_round = guards[0]
        assert str(condition[0]) == "Ya <= 50"
        assert min_round >= 2

    def test_no_guards_for_fact_ics(self, ex32):
        engine = ResidueGuidedEngine(ex32.program, [ex32.ic("ic1")],
                                     pred="eval")
        assert engine.attached_guards == 0

    def test_same_answers_with_checks_counted(self, ex43, rng):
        engine = ResidueGuidedEngine(ex43.program, [ex43.ic("ic1")],
                                     pred="anc")
        for _ in range(4):
            db = random_database({"par": 4}, 6, 14, rng,
                                 numeric_columns={"par": [1, 3]})
            make_consistent(db, [ex43.ic("ic1")])
            plain = evaluate(ex43.program, db)
            guided = engine.evaluate(db)
            assert plain.facts("anc") == guided.facts("anc")
            assert plain.stats.residue_checks == 0
        assert guided.method == "seminaive+residue-guided"

    def test_checks_grow_with_derivations(self, ex43, rng):
        engine = ResidueGuidedEngine(ex43.program, [ex43.ic("ic1")],
                                     pred="anc")
        small = random_database({"par": 4}, 4, 6, rng,
                                numeric_columns={"par": [1, 3]})
        large = random_database({"par": 4}, 10, 40, rng,
                                numeric_columns={"par": [1, 3]})
        for db in (small, large):
            make_consistent(db, [ex43.ic("ic1")])
        checks_small = engine.evaluate(small).stats.residue_checks
        checks_large = engine.evaluate(large).stats.residue_checks
        assert checks_large >= checks_small

    def test_wrapper(self, ex43, rng):
        db = random_database({"par": 4}, 5, 10, rng,
                             numeric_columns={"par": [1, 3]})
        make_consistent(db, [ex43.ic("ic1")])
        result = guided_evaluate(ex43.program, [ex43.ic("ic1")], db,
                                 pred="anc")
        assert result.facts("anc") == \
            evaluate(ex43.program, db).facts("anc")


class TestThreeWayAgreement:
    """Plain, transformed and guided must always agree — the paradigms
    differ in where the constraint knowledge is paid for, not in what is
    computed."""

    def test_genealogy(self, ex43, rng):
        optimized = SemanticOptimizer(
            ex43.program, [ex43.ic("ic1")]).optimize().optimized
        engine = ResidueGuidedEngine(ex43.program, [ex43.ic("ic1")],
                                     pred="anc")
        for _ in range(5):
            db = random_database({"par": 4}, 7, 16, rng,
                                 numeric_columns={"par": [1, 3]})
            make_consistent(db, [ex43.ic("ic1")])
            plain = evaluate(ex43.program, db).facts("anc")
            pushed = evaluate(optimized, db).facts("anc")
            guided = engine.evaluate(db).facts("anc")
            assert plain == pushed == guided
