"""Tests for rule-body minimization and rule subsumption (Sagiv-style)."""

import pytest

from repro.constraints import ic_from_text
from repro.core import (check_equivalent, minimize_program, minimize_rule,
                        rule_subsumed_by)
from repro.core.equivalence import make_consistent, random_database
from repro.datalog import parse_program, parse_rule


class TestMinimizeRule:
    def test_classical_cq_minimization(self):
        rule = parse_rule("p(X) :- e(X, Y), e(X, Z).")
        minimized, dropped = minimize_rule(rule)
        assert len(minimized.database_atoms()) == 1
        assert len(dropped) == 1

    def test_no_redundancy_no_change(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).")
        minimized, dropped = minimize_rule(rule)
        assert minimized == rule and not dropped

    def test_head_variables_protected(self):
        rule = parse_rule("p(X, Y) :- e(X, Y), e(X, Z).")
        minimized, dropped = minimize_rule(rule)
        # e(X, Y) binds the head variable Y; only e(X, Z) may go.
        assert str(dropped[0]) == "e(X, Z)"
        assert "e(X, Y)" in str(minimized)

    def test_ic_implied_atom_dropped(self):
        rule = parse_rule("q(E) :- boss(E, B), experienced(B), vip(B).")
        ic = ic_from_text("vip(B) -> experienced(B).")
        minimized, dropped = minimize_rule(rule, [ic])
        assert [str(a) for a in dropped] == ["experienced(B)"]

    def test_without_ic_nothing_dropped(self):
        rule = parse_rule("q(E) :- boss(E, B), experienced(B), vip(B).")
        minimized, dropped = minimize_rule(rule)
        assert not dropped

    def test_recursive_call_never_touched(self):
        rule = parse_rule("p(X, Y) :- p(X, Z), e(Z, Y), e(Z, W).")
        minimized, dropped = minimize_rule(rule)
        assert minimized.count_occurrences("p") == 1
        assert [str(a) for a in dropped] == ["e(Z, W)"]

    def test_greedy_cascades(self):
        rule = parse_rule("p(X) :- e(X, Y), e(X, Z), e(X, W).")
        minimized, dropped = minimize_rule(rule)
        assert len(minimized.database_atoms()) == 1
        assert len(dropped) == 2


class TestRuleSubsumption:
    def test_more_constrained_rule_subsumed(self):
        general = parse_rule("r0: p(X) :- e(X).")
        specific = parse_rule("r1: p(X) :- e(X), f(X).")
        assert rule_subsumed_by(specific, general)
        assert not rule_subsumed_by(general, specific)

    def test_different_predicates_never_subsume(self):
        a = parse_rule("r0: p(X) :- e(X).")
        b = parse_rule("r1: q(X) :- e(X).")
        assert not rule_subsumed_by(a, b)

    def test_variable_renaming_handled(self):
        a = parse_rule("r0: p(A, B) :- e(A, C), f(C, B).")
        b = parse_rule("r1: p(X, Y) :- e(X, Z), f(Z, Y).")
        assert rule_subsumed_by(a, b)

    def test_ic_based_subsumption(self):
        ic = ic_from_text("gold(X) -> member(X).")
        candidate = parse_rule("r0: offer(X) :- gold(X), member(X).")
        other = parse_rule("r1: offer(X) :- gold(X).")
        assert rule_subsumed_by(candidate, other, [ic])


class TestMinimizeProgram:
    def test_removes_subsumed_rule(self):
        program = parse_program("""
            r0: p(X) :- e(X).
            r1: p(X) :- e(X), f(X).
        """)
        report = minimize_program(program)
        assert report.removed_rules == ["r1"]
        assert len(report.minimized) == 1
        assert "1 rule(s) removed" in report.summary()

    def test_duplicate_rules_keep_one(self):
        program = parse_program("""
            r0: p(X) :- e(X).
            r1: p(X) :- e(X).
        """)
        report = minimize_program(program)
        assert len(report.minimized) == 1

    def test_preserves_semantics_with_ics(self, rng):
        program = parse_program("""
            r0: q(E, B) :- boss(E, B), experienced(B), vip(B).
            r1: q(E, B) :- peer(E, B).
        """)
        ic = ic_from_text("vip(B) -> experienced(B).")
        report = minimize_program(program, [ic])
        assert report.changed
        dbs = []
        for _ in range(5):
            db = random_database(
                {"boss": 2, "experienced": 1, "vip": 1, "peer": 2},
                5, 10, rng)
            make_consistent(db, [ic])
            dbs.append(db)
        assert check_equivalent(program, report.minimized, "q",
                                dbs) is None

    def test_recursive_program_untouched_when_minimal(self, ex43):
        report = minimize_program(ex43.program, list(ex43.ics))
        assert not report.changed
        assert report.minimized == ex43.program


class TestFunctionalDependencies:
    FD = "field(T, F1), field(T, F2) -> F1 = F2."

    def test_recognizer(self):
        from repro.core import as_functional_dependency
        fd = as_functional_dependency(ic_from_text(self.FD))
        assert fd == ("field", (0,), 1)

    def test_recognizer_rejects_other_shapes(self):
        from repro.core import as_functional_dependency
        for text in [
            "field(T, F) -> good(T).",                    # one atom
            "a(T, F1), b(T, F2) -> F1 = F2.",             # mixed preds
            "field(T, F1), field(T, F2) -> F1 != F2.",    # not equality
            "field(T1, F1), field(T2, F2) -> F1 = F2.",   # no key
        ]:
            assert as_functional_dependency(ic_from_text(text)) is None

    def test_merge_and_fold(self):
        from repro.core import apply_functional_dependencies
        rule = parse_rule(
            "q(P, T) :- expert(P, F), field(T, F), field(T, G), "
            "expert(P, G).")
        merged, notes = apply_functional_dependencies(
            rule, [ic_from_text(self.FD)])
        assert merged is not None
        assert merged.count_occurrences("field") == 1
        assert any("merged" in note for note in notes)

    def test_head_variables_survive_merge(self):
        from repro.core import apply_functional_dependencies
        rule = parse_rule(
            "q(T, G) :- field(T, F), field(T, G), big(F).")
        merged, _ = apply_functional_dependencies(
            rule, [ic_from_text(self.FD)])
        # G is a head variable: F must be the one substituted away.
        assert merged.head == rule.head
        assert "big(G)" in str(merged)

    def test_unsatisfiable_rule_detected(self):
        from repro.core import apply_functional_dependencies
        rule = parse_rule("bad(T) :- field(T, ml), field(T, db).")
        merged, notes = apply_functional_dependencies(
            rule, [ic_from_text(self.FD)])
        assert merged is None
        assert any("unsatisfiable" in note for note in notes)

    def test_minimize_program_integrates_fds(self, rng):
        from repro.core import check_equivalent, minimize_program
        from repro.core.equivalence import make_consistent, random_database

        program = parse_program(
            "r0: q(P, T) :- expert(P, F), field(T, F), field(T, G), "
            "expert(P, G).")
        fd = ic_from_text(self.FD)
        report = minimize_program(program, [fd])
        assert report.changed
        assert len(report.minimized.rule("r0").body) == 2
        dbs = []
        for _ in range(5):
            db = random_database({"expert": 2, "field": 2}, 5, 10, rng)
            make_consistent(db, [fd])
            dbs.append(db)
        assert check_equivalent(program, report.minimized, "q",
                                dbs) is None

    def test_unsatisfiable_rule_removed_from_program(self):
        from repro.core import minimize_program

        program = parse_program("""
            r0: ok(T) :- field(T, F).
            r1: bad(T) :- field(T, ml), field(T, db).
        """)
        report = minimize_program(program, [ic_from_text(self.FD)])
        assert report.removed_rules == ["r1"]
        assert len(report.minimized) == 1


class TestChaseEGD:
    def test_egd_merges_nulls(self):
        from repro.core.containment import chase, freeze
        from repro.datalog.atoms import atom

        fd = ic_from_text("field(T, F1), field(T, F2) -> F1 = F2.")
        instance, supply = freeze((atom("field", "T", "F"),
                                   atom("field", "T", "G"),
                                   atom("uses", "G")))
        chase(instance, [fd], supply)
        assert len([a for a in instance.atoms
                    if a.pred == "field"]) == 1
        # The uses-atom followed the merge.
        (uses,) = [a for a in instance.atoms if a.pred == "uses"]
        (field_atom,) = [a for a in instance.atoms
                         if a.pred == "field"]
        assert uses.args[0] == field_atom.args[1]

    def test_egd_constant_clash_is_inconsistent(self):
        from repro.core.containment import chase, freeze
        from repro.datalog.atoms import atom

        fd = ic_from_text("field(T, F1), field(T, F2) -> F1 = F2.")
        instance, supply = freeze((atom("field", "t", "ml"),
                                   atom("field", "t", "db")))
        chase(instance, [fd], supply)
        assert instance.inconsistent

    def test_egd_respects_protected_variables(self):
        from repro.core.containment import chase, freeze
        from repro.datalog.atoms import atom
        from repro.datalog.terms import Variable

        fd = ic_from_text("field(T, F1), field(T, F2) -> F1 = F2.")
        instance, supply = freeze((atom("field", "T", "F"),
                                   atom("field", "T", "G")))
        instance.protected = frozenset({Variable("G")})
        chase(instance, [fd], supply)
        (survivor,) = [a for a in instance.atoms if a.pred == "field"]
        assert survivor.args[1] == Variable("G")
