"""Tests for the workload generators and paper fixtures."""

import pytest

from repro.constraints import satisfies
from repro.datalog import validate_program
from repro.engine import evaluate
from repro.workloads import (ALL_EXAMPLES, GenealogyParams,
                             OrganizationParams, UniversityParams,
                             chain_edges, generate_genealogy,
                             generate_organization, generate_university,
                             layered_digraph, load, random_digraph,
                             transitive_closure_program, tree_edges,
                             unary_subset)
from repro.datalog.parser import parse_program


class TestPaperExamples:
    @pytest.mark.parametrize("factory", ALL_EXAMPLES)
    def test_programs_satisfy_assumptions(self, factory):
        example = factory()
        report = validate_program(example.program)
        assert report.ok, f"{example.name}: {report.summary()}"

    @pytest.mark.parametrize("factory", ALL_EXAMPLES)
    def test_ics_are_edb_only_and_connected(self, factory):
        example = factory()
        for ic in example.ics:
            assert ic.is_connected(), example.name
            assert ic.is_edb_only(example.program), example.name

    def test_load_by_name(self):
        assert load("example_4_3").pred == "anc"
        with pytest.raises(KeyError):
            load("example_9_9")

    def test_ic_lookup(self, ex43):
        assert ex43.ic("ic1").label == "ic1"
        with pytest.raises(KeyError):
            ex43.ic("ic9")


class TestGenericGenerators:
    def test_chain(self):
        db = chain_edges(5)
        assert len(db.relation("edge")) == 5

    def test_tree(self):
        db = tree_edges(depth=3, fanout=2)
        assert len(db.relation("edge")) == 2 + 4 + 8

    def test_random_digraph_acyclic(self, rng, tc_program):
        db = random_digraph(10, 20, rng)
        result = evaluate(tc_program, db)
        assert all(a != b for a, b in result.facts("reach"))

    def test_layered_depth(self, rng, tc_program):
        db = layered_digraph(layers=4, width=3, fanout=1, rng=rng)
        result = evaluate(tc_program, db)
        # The longest path spans exactly `layers` edges.
        assert result.stats.iterations <= 4 + 2

    def test_unary_subset(self, rng):
        db = chain_edges(10)
        unary_subset(db, "edge", 0, "marked", 1.0, rng)
        assert len(db.relation("marked")) == 10

    def test_tc_program_text(self):
        program = parse_program(transitive_closure_program())
        assert program.recursion_info().is_linear("reach")


class TestDomainGenerators:
    def test_university_consistent(self, rng, ex32):
        db = generate_university(UniversityParams(professors=12,
                                                  students=6, theses=6),
                                 rng)
        assert satisfies(db, *ex32.ics)
        assert len(db.relation("works_with")) >= 11  # the chain

    def test_university_fields_per_thesis(self, rng):
        params = UniversityParams(theses=5, fields=8, fields_per_thesis=4)
        db = generate_university(params, rng)
        assert len(db.relation("field")) > 5

    def test_university_evaluates(self, rng, ex32):
        db = generate_university(UniversityParams(professors=10,
                                                  students=5, theses=5),
                                 rng)
        result = evaluate(ex32.program, db)
        assert result.count("eval") >= len(db.facts("super"))

    def test_organization_consistent(self, rng, ex41):
        db = generate_organization(OrganizationParams(levels=4, width=6),
                                   rng)
        assert satisfies(db, *ex41.ics)
        assert len(db.facts("same_level")) > 0

    def test_organization_evaluates(self, rng, ex41):
        db = generate_organization(OrganizationParams(levels=4, width=6),
                                   rng)
        result = evaluate(ex41.program, db)
        assert result.count("triple") >= len(db.facts("same_level"))

    def test_genealogy_consistent(self, rng, ex43):
        db = generate_genealogy(GenealogyParams(generations=6, width=8),
                                rng)
        assert satisfies(db, *ex43.ics)

    def test_genealogy_age_policy(self, rng):
        params = GenealogyParams(generations=6, width=8,
                                 young_fraction=1.0)
        db = generate_genealogy(params, rng)
        # Anyone three or more generations above the bottom is old.
        for child, _, parent, parent_age in db.facts("par"):
            generation = int(parent.split("_")[0][1:])
            if params.generations - 1 - generation >= 3:
                assert parent_age > 50, (parent, parent_age)

    def test_genealogy_has_young_people(self, rng):
        db = generate_genealogy(GenealogyParams(generations=5, width=10,
                                                young_fraction=1.0), rng)
        ages = {age for _, age, _, _ in db.facts("par")}
        assert any(age <= 50 for age in ages)
