"""Tests for CSV import/export."""

import pytest

from repro.errors import EvaluationError
from repro.facts import Database
from repro.facts.io import (load_csv, load_directory, save_csv,
                            save_directory)


class TestLoadCSV:
    def test_type_inference(self, tmp_path):
        path = tmp_path / "par.csv"
        path.write_text("bob,30,ann,72.5\ncal,7,bob,30\n")
        db = Database()
        added = load_csv(db, "par", path)
        assert added == 2
        assert ("bob", 30, "ann", 72.5) in db.facts("par")

    def test_explicit_types(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("001,1\n")
        db = Database()
        load_csv(db, "p", path, types="str,int")
        assert db.facts("p") == {("001", 1)}

    def test_bad_type_signature(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("a,b\n")
        with pytest.raises(EvaluationError):
            load_csv(Database(), "p", path, types="str,datetime")

    def test_unparsable_cell(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("x\n")
        with pytest.raises(EvaluationError):
            load_csv(Database(), "p", path, types="int")

    def test_column_count_mismatch(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(EvaluationError):
            load_csv(Database(), "p", path, types="str,str")

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("name,age\nbob,30\n")
        db = Database()
        assert load_csv(db, "p", path, header=True) == 1

    def test_duplicates_not_recounted(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("a,1\na,1\n")
        db = Database()
        assert load_csv(db, "p", path) == 1


class TestRoundTrip:
    def test_save_and_reload(self, tmp_path, chain_db):
        path = tmp_path / "edge.csv"
        written = save_csv(chain_db, "edge", path)
        assert written == 3
        db = Database()
        load_csv(db, "edge", path)
        assert db.facts("edge") == chain_db.facts("edge")

    def test_directory_round_trip(self, tmp_path):
        db = Database({"edge": [("a", "b")], "age": [("a", 30)]})
        total = save_directory(db, tmp_path / "out")
        assert total == 2
        again = load_directory(tmp_path / "out")
        assert again == db

    def test_directory_with_types(self, tmp_path):
        (tmp_path / "id.csv").write_text("007\n")
        db = load_directory(tmp_path, types={"id": "str"})
        assert db.facts("id") == {("007",)}

    def test_missing_directory(self, tmp_path):
        with pytest.raises(EvaluationError):
            load_directory(tmp_path / "nope")

    def test_evaluation_over_loaded_data(self, tmp_path, tc_program):
        (tmp_path / "edge.csv").write_text("a,b\nb,c\n")
        db = load_directory(tmp_path)
        from repro.engine import evaluate
        assert evaluate(tc_program, db).count("reach") == 3
