"""End-to-end tests for the SemanticOptimizer facade."""

import pytest

from repro.core import SemanticOptimizer, check_equivalent, optimize
from repro.core.equivalence import make_consistent, random_database
from repro.datalog import parse_program
from repro.errors import ProgramError


def _consistent_dbs(schema, ics, rng, count=5, numeric=None):
    dbs = []
    for _ in range(count):
        db = random_database(schema, 6, 12, rng, numeric_columns=numeric,
                             max_value=20000)
        make_consistent(db, ics)
        dbs.append(db)
    return dbs


class TestEndToEnd:
    def test_example_3_2_elimination(self, ex32, rng):
        report = SemanticOptimizer(ex32.program, [ex32.ic("ic1")],
                                   pred="eval").optimize()
        assert report.changed
        applied = report.applied_steps
        assert len(applied) == 1
        assert applied[0].outcome.action == "eliminate"
        assert applied[0].sequence == ("r1", "r1")
        dbs = _consistent_dbs(
            {"super": 3, "works_with": 2, "expert": 2, "field": 2},
            [ex32.ic("ic1")], rng)
        assert check_equivalent(ex32.program, report.optimized, "eval",
                                dbs) is None

    def test_example_4_1_threaded(self, ex41, rng):
        report = SemanticOptimizer(ex41.program, [ex41.ic("ic1")],
                                   pred="triple").optimize()
        applied = report.applied_steps
        assert [s.sequence for s in applied] == \
            [("r2", "r2", "r2", "r2")]
        dbs = _consistent_dbs(
            {"same_level": 3, "boss": 3, "experienced": 1},
            [ex41.ic("ic1")], rng)
        assert check_equivalent(ex41.program, report.optimized,
                                "triple", dbs) is None

    def test_example_4_3_pruning(self, ex43, rng):
        report = SemanticOptimizer(ex43.program,
                                   [ex43.ic("ic1")]).optimize()
        applied = report.applied_steps
        assert applied and applied[0].outcome.action == "prune"
        # The all-recursive sequence is preferred over r1 r1 r0.
        assert applied[0].sequence == ("r1", "r1", "r1")
        dbs = _consistent_dbs({"par": 4}, [ex43.ic("ic1")], rng,
                              numeric={"par": [1, 3]})
        assert check_equivalent(ex43.program, report.optimized, "anc",
                                dbs) is None

    def test_both_university_ics_together(self, ex32, rng):
        report = SemanticOptimizer(
            ex32.program, ex32.ics, pred="eval",
            small_relations={"doctoral"}).optimize()
        actions = {s.outcome.action for s in report.applied_steps}
        assert actions == {"eliminate", "introduce"}
        dbs = _consistent_dbs(
            {"super": 3, "works_with": 2, "expert": 2, "field": 2,
             "pays": 4, "doctoral": 1}, list(ex32.ics), rng,
            numeric={"pays": [0]})
        for pred in ("eval", "eval_support"):
            assert check_equivalent(ex32.program, report.optimized, pred,
                                    dbs) is None

    def test_one_call_convenience(self, ex43):
        report = optimize(ex43.program, [ex43.ic("ic1")])
        assert report.changed


class TestPolicies:
    def test_introduction_needs_small_relation_declaration(self, ex32):
        report = SemanticOptimizer(ex32.program, [ex32.ic("ic2")],
                                   pred="eval").optimize()
        assert not report.changed
        assert any("small" in s.outcome.reason for s in report.steps)

    def test_guard_none_mode(self, ex41):
        report = SemanticOptimizer(ex41.program, [ex41.ic("ic1")],
                                   pred="triple", guard="none").optimize()
        # Paper mode applies more (including the loose rule-level one).
        guarded = SemanticOptimizer(ex41.program, [ex41.ic("ic1")],
                                    pred="triple").optimize()
        assert len(report.applied_steps) >= len(guarded.applied_steps)

    def test_automaton_compilation_mode(self, ex32, rng):
        report = SemanticOptimizer(ex32.program, [ex32.ic("ic1")],
                                   pred="eval",
                                   compilation="automaton").optimize()
        assert report.changed
        dbs = _consistent_dbs(
            {"super": 3, "works_with": 2, "expert": 2, "field": 2},
            [ex32.ic("ic1")], rng)
        assert check_equivalent(ex32.program, report.optimized, "eval",
                                dbs) is None

    def test_collapse_off_keeps_chain(self, ex32):
        report = SemanticOptimizer(ex32.program, [ex32.ic("ic1")],
                                   pred="eval", compilation="automaton",
                                   collapse=False).optimize()
        assert "eval__p1" in report.optimized.idb_predicates

    def test_collapse_on_inlines_chain(self, ex32):
        report = SemanticOptimizer(ex32.program, [ex32.ic("ic1")],
                                   pred="eval",
                                   compilation="automaton").optimize()
        assert "eval__p1" not in report.optimized.idb_predicates

    def test_unknown_compilation_rejected(self, ex32):
        with pytest.raises(ValueError):
            SemanticOptimizer(ex32.program, [ex32.ic("ic1")],
                              compilation="magic")

    def test_pred_inference(self, ex43):
        optimizer = SemanticOptimizer(ex43.program, [ex43.ic("ic1")])
        assert optimizer.pred == "anc"

    def test_pred_inference_ambiguous(self):
        program = parse_program("""
            a(X, Y) :- e(X, Y).
            a(X, Y) :- a(X, Z), e(Z, Y).
            b(X, Y) :- f(X, Y).
            b(X, Y) :- b(X, Z), f(Z, Y).
        """)
        with pytest.raises(ProgramError):
            SemanticOptimizer(program, [])

    def test_no_ics_no_change(self, ex43):
        report = SemanticOptimizer(ex43.program, []).optimize()
        assert not report.changed
        assert report.optimized == ex43.program

    def test_report_summary_format(self, ex43):
        report = SemanticOptimizer(ex43.program,
                                   [ex43.ic("ic1")]).optimize()
        summary = report.summary()
        assert "pushes applied" in summary
        assert "[prune]" in summary


class TestResidueListing:
    def test_all_residues_mixes_levels(self, ex32):
        optimizer = SemanticOptimizer(ex32.program, list(ex32.ics),
                                      pred="eval",
                                      small_relations={"doctoral"})
        residues = optimizer.all_residues()
        sequences = {item.sequence for item in residues}
        assert ("r1", "r1") in sequences
        assert ("r2",) in sequences

    def test_non_chain_ic_skipped_for_sequences(self, ex43):
        from repro.constraints import ic_from_text
        triangle = ic_from_text(
            "par(A, Aa, B, Ba), par(B, Ba, C, Ca), par(C, Ca, A, Aa) -> .")
        optimizer = SemanticOptimizer(ex43.program, [triangle],
                                      pred="anc")
        assert optimizer.sequence_residues() == []


class TestOptimizeAllPredicates:
    def test_two_independent_recursions(self, rng):
        from repro.core import optimize_all_predicates
        from repro.constraints import ics_from_text
        from repro.core.equivalence import (make_consistent,
                                            random_database)
        from repro.engine import evaluate

        program = parse_program("""
            a0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
            a1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za),
                                     par(Z, Za, Y, Ya).
            m0: mgr(E, B) :- boss(E, B).
            m1: mgr(E, B) :- mgr(E, M), boss(M, B).
        """)
        ics = ics_from_text("""
            ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
                 par(Z3, Z3a, Z2, Z2a) -> .
            ic2: boss(A, B), boss(B, C), boss(C, D) -> .
        """)
        report = optimize_all_predicates(program, ics)
        optimized_preds = {step.sequence[0][0] for step in
                           report.applied_steps}
        assert report.changed
        # Both predicates received pushes.
        applied_heads = set()
        for step in report.applied_steps:
            applied_heads.add(step.sequence[0][0])
        assert {"a", "m"} <= {label[0] for step in report.applied_steps
                              for label in step.sequence}
        dbs = []
        for _ in range(4):
            db = random_database({"par": 4, "boss": 2}, 6, 12, rng,
                                 numeric_columns={"par": [1, 3]})
            make_consistent(db, list(ics))
            dbs.append(db)
        from repro.core import check_equivalent
        for pred in ("anc", "mgr"):
            assert check_equivalent(program, report.optimized, pred,
                                    dbs) is None

    def test_nonlinear_predicate_skipped(self):
        from repro.core import optimize_all_predicates

        program = parse_program("""
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
        """)
        report = optimize_all_predicates(program, [])
        assert not report.changed
        assert any("not linear" in step.outcome.reason
                   for step in report.steps)

    def test_non_recursive_program_rule_level(self):
        from repro.core import optimize_all_predicates
        from repro.constraints import ics_from_text

        program = parse_program(
            "s(P, S, T, M) :- sup(P, S, T), pays(M, G, S, T).")
        ics = ics_from_text("icu: pays(M, G, S, T) -> doctoral(S).")
        report = optimize_all_predicates(program, ics,
                                         small_relations={"doctoral"})
        assert report.changed


class TestNonRecursiveOptimizer:
    def test_pred_none_rule_level_only(self):
        from repro.constraints import ics_from_text

        program = parse_program(
            "s(P, S, T, M) :- sup(P, S, T), pays(M, G, S, T).")
        ics = ics_from_text("icu: pays(M, G, S, T) -> doctoral(S).")
        optimizer = SemanticOptimizer(program, ics,
                                      small_relations={"doctoral"})
        assert optimizer.pred is None
        assert optimizer.sequence_residues() == []
        report = optimizer.optimize()
        assert report.changed


class TestPeriodicFallThrough:
    def test_two_recursive_rules_fall_back_to_automaton(self, rng):
        """Periodic compilation needs a single recursive rule; with two,
        phase 1 must leave the residue to the automaton path."""
        from repro.constraints import ics_from_text
        from repro.core.equivalence import make_consistent, random_database

        program = parse_program("""
            r0: reach(X, Y) :- edge(X, Y).
            r1: reach(X, Y) :- reach(X, Z), edge(Z, Y), active(Z).
            r2: reach(X, Y) :- reach(X, Z), jump(Z, Y).
        """)
        ics = ics_from_text(
            "ice: edge(A, B), edge(B, C) -> active(B).")
        report = SemanticOptimizer(program, ics, pred="reach").optimize()
        applied = report.applied_steps
        assert applied, report.summary()
        # The automaton path handled it (isolation predicates exist).
        assert any("__" in pred
                   for pred in report.optimized.idb_predicates) or applied
        dbs = []
        for _ in range(4):
            db = random_database({"edge": 2, "jump": 2, "active": 1},
                                 6, 12, rng)
            make_consistent(db, list(ics))
            dbs.append(db)
        assert check_equivalent(program, report.optimized, "reach",
                                dbs) is None
