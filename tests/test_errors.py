"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (ConstraintError, EvaluationError, ParseError,
                          ProgramError, ReproError, TransformError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ParseError, ProgramError, ConstraintError, EvaluationError,
        TransformError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_single_catch_covers_library(self):
        from repro.datalog import parse_program

        with pytest.raises(ReproError):
            parse_program("p(X :-")


class TestParseErrorLocation:
    def test_line_and_column(self):
        error = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_line_only(self):
        error = ParseError("bad token", line=2)
        assert "line 2" in str(error) and "column" not in str(error)

    def test_no_location(self):
        error = ParseError("bad token")
        assert str(error) == "bad token"

    def test_real_parse_error_carries_location(self):
        from repro.datalog import parse_program

        with pytest.raises(ParseError) as info:
            parse_program("p(X) :- q(X).\nbroken @ here.")
        assert info.value.line == 2
