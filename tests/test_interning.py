"""Interned columnar storage: symbol tables, raw rows, live indexes.

The storage contract this file pins down: a relation's *value-domain*
API (``add``, ``rows``, ``lookup``) behaves identically whether or not
the relation is interned, the *storage-domain* API (``raw_*``) exposes
dense int codes, and every pre-built hash index stays consistent under
every insert path — the invariant the compiled kernels' pre-resolved
probes depend on.
"""

import warnings

import pytest

from repro.facts import Database, Relation
from repro.facts.symbols import SymbolTable, validate_interning
from repro.errors import EvaluationError


class TestSymbolTable:
    def test_intern_is_idempotent_and_dense(self):
        table = SymbolTable()
        codes = [table.intern(v) for v in ("a", "b", "a", 7, "b")]
        assert codes == [0, 1, 0, 2, 1]
        assert len(table) == 3

    def test_round_trip(self):
        table = SymbolTable()
        row = ("x", 3, "y")
        assert table.decode_row(table.intern_row(row)) == row

    def test_code_of_unknown_value_is_none(self):
        table = SymbolTable()
        table.intern("known")
        assert table.code("unknown") is None
        assert table.code("known") == 0

    def test_distinct_values_get_distinct_codes(self):
        # 1 and "1" and True must not collapse: codes key on the value,
        # and bool is a subtype of int so True == 1 — the table must
        # still keep 1 retrievable as 1.
        table = SymbolTable()
        a, b = table.intern(1), table.intern("1")
        assert a != b
        assert table.value(a) == 1 and table.value(b) == "1"

    def test_validate_interning(self):
        validate_interning("on")
        validate_interning("off")
        with pytest.raises(EvaluationError, match="unknown interning"):
            validate_interning("maybe")


class TestInternedRelation:
    def test_value_api_is_storage_agnostic(self):
        plain = Relation("r", 2, [("a", 1), ("b", 2)])
        interned = Relation("r", 2, [("a", 1), ("b", 2)],
                            symbols=SymbolTable())
        assert plain.rows() == interned.rows()
        assert set(plain) == set(interned)
        assert ("a", 1) in interned
        assert ("z", 9) not in interned

    def test_raw_rows_are_codes(self):
        symbols = SymbolTable()
        rel = Relation("r", 2, [("a", "b")], symbols=symbols)
        (raw,) = rel.raw_rows()
        assert raw == (symbols.code("a"), symbols.code("b"))

    def test_database_interned_preserves_facts(self):
        db = Database({"edge": [("a", "b"), ("b", "c")]})
        coded = db.interned()
        assert coded.symbols is not None
        assert coded.relation("edge").rows() == db.relation("edge").rows()
        # Already-interned databases come back as-is.
        assert coded.interned() is coded

    def test_lookup_decodes(self):
        rel = Relation("r", 2, [("a", 1), ("a", 2), ("b", 1)],
                       symbols=SymbolTable())
        assert set(rel.lookup(((0, "a"),))) == {("a", 1), ("a", 2)}
        assert set(rel.lookup(((0, "nope"),))) == set()


@pytest.fixture(params=["plain", "interned"])
def rel(request):
    symbols = SymbolTable() if request.param == "interned" else None
    return Relation("r", 3, symbols=symbols)


def _assert_indexes_consistent(relation):
    """Every live index must exactly partition the current rows."""
    for columns in list(relation.backend.indexes):
        index = relation.index_for(columns)
        indexed = [row for bucket in index.values() for row in bucket]
        assert sorted(indexed) == sorted(relation.raw_rows())
        for key, bucket in index.items():
            for row in bucket:
                assert tuple(row[c] for c in columns) == key


class TestLiveIndexMaintenance:
    """Satellite: add/add_all against multiple pre-built indexes."""

    def test_add_updates_every_prebuilt_index(self, rel):
        rel.add(("a", 1, "x"))
        # Build three indexes over different column sets up front.
        for columns in ((0,), (2,), (0, 1)):
            rel.index_for(columns)
        rel.add(("a", 2, "y"))
        rel.add(("b", 1, "x"))
        _assert_indexes_consistent(rel)

    def test_add_all_updates_every_prebuilt_index(self, rel):
        rel.index_for((1,))
        rel.index_for((1, 2))
        rel.add_all([("a", 1, "x"), ("a", 1, "x"), ("b", 2, "y")])
        assert len(rel) == 2
        _assert_indexes_consistent(rel)

    def test_raw_merge_new_updates_indexes_and_screens_duplicates(
            self, rel):
        rel.add(("a", 1, "x"))
        rel.index_for((0,))
        raw_existing = next(iter(rel.raw_rows()))
        fresh = rel.raw_merge_new(
            [raw_existing, raw_existing[:2] + raw_existing[2:]])
        assert fresh == []  # duplicate of the existing row, twice
        rel.add(("b", 2, "y"))
        raw_new = [row for row in rel.raw_rows() if row != raw_existing]
        other = Relation("s", 3, symbols=rel.symbols)
        other.index_for((2,))
        assert sorted(other.raw_merge_new(raw_new + raw_new)) \
            == sorted(raw_new)
        _assert_indexes_consistent(other)

    def test_raw_merge_trusts_disjointness(self, rel):
        rel.add_all([("a", 1, "x"), ("b", 2, "y")])
        rel.index_for((0, 1, 2))
        sink = Relation("sink", 3, symbols=rel.symbols)
        sink.index_for((1,))
        sink.raw_merge(list(rel.raw_rows()))
        assert len(sink) == 2
        _assert_indexes_consistent(sink)

    def test_clear_then_reuse_rebuilds_indexes(self, rel):
        rel.add_all([("a", 1, "x"), ("b", 2, "y")])
        rel.index_for((0,))
        rel.clear()
        assert len(rel) == 0
        assert rel.index_for((0,)) == {}
        rel.add(("c", 3, "z"))
        _assert_indexes_consistent(rel)
        assert len(rel.index_for((0,))) == 1

    def test_index_buckets_are_read_only_views(self, rel):
        """Mutating a returned bucket must not corrupt the relation."""
        rel.add_all([("a", 1, "x"), ("a", 2, "y")])
        index = rel.index_for((0,))
        (key,) = index
        assert len(index[key]) == 2
        # The contract is read-only access; the store must not depend
        # on callers keeping their hands off the backing set.
        assert len(rel.raw_rows()) == 2
        rel.add(("b", 1, "x"))
        assert len(rel.index_for((0,))) == 2


class TestStatistics:
    def test_distinct_count_scan_and_cache(self):
        rel = Relation("r", 2, [("a", 1), ("a", 2), ("b", 2)])
        assert rel.distinct_count(0) == 2
        assert rel.distinct_count(1) == 2
        rel.add(("c", 3))
        # Cache keyed by cardinality: must see the new value.
        assert rel.distinct_count(0) == 3

    def test_distinct_count_reads_live_index_for_free(self):
        rel = Relation("r", 2, [("a", 1), ("a", 2), ("b", 2)])
        index = rel.index_for((0,))
        assert rel.distinct_count(0) == len(index) == 2

    def test_probe_estimate_independence_model(self):
        rel = Relation("r", 2,
                       [(x, y) for x in "ab" for y in range(5)])
        assert rel.probe_estimate(()) == 10.0
        assert rel.probe_estimate((0,)) == pytest.approx(5.0)
        assert rel.probe_estimate((0, 1)) == pytest.approx(1.0)

    def test_probe_estimate_on_empty_relation(self):
        rel = Relation("r", 2)
        assert rel.probe_estimate((0,)) == 0.0


class TestDifferenceRename:
    def test_difference_does_not_mutate_operands(self):
        left = Relation("l", 1, [("a",), ("b",)])
        right = Relation("r", 1, [("b",)])
        out = left.difference(right)
        assert out.rows() == frozenset({("a",)})
        assert left.rows() == frozenset({("a",), ("b",)})
        assert right.rows() == frozenset({("b",)})

    def test_difference_across_storage_modes(self):
        left = Relation("l", 1, [("a",), ("b",)], symbols=SymbolTable())
        right = Relation("r", 1, [("b",)])
        assert left.difference(right).rows() == frozenset({("a",)})

    def test_deprecated_alias_removed(self):
        # ``difference_update_into`` (a misnamed alias that never
        # updated in place) finished its deprecation cycle; the only
        # spelling is ``difference``.
        left = Relation("l", 1, [("a",), ("b",)])
        assert not hasattr(left, "difference_update_into")
        right = Relation("r", 1, [("b",)])
        assert left.difference(right).rows() == frozenset({("a",)})
