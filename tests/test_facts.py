"""Unit tests for repro.facts: relations and databases."""

import pytest

from repro.datalog.atoms import atom
from repro.errors import EvaluationError
from repro.facts import Database, Relation, SymbolTable


class TestRelation:
    def test_add_dedupes(self):
        rel = Relation("r", 2)
        assert rel.add(("a", "b"))
        assert not rel.add(("a", "b"))
        assert len(rel) == 1

    def test_arity_enforced(self):
        rel = Relation("r", 2)
        with pytest.raises(ValueError):
            rel.add(("a",))

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Relation("r", -1)

    def test_zero_arity(self):
        rel = Relation("flag", 0)
        assert rel.add(())
        assert () in rel

    def test_lookup_full_scan(self):
        rel = Relation("r", 2, [("a", 1), ("b", 2)])
        assert set(rel.lookup(())) == {("a", 1), ("b", 2)}

    def test_lookup_by_column(self):
        rel = Relation("r", 2, [("a", 1), ("a", 2), ("b", 1)])
        assert set(rel.lookup(((0, "a"),))) == {("a", 1), ("a", 2)}
        assert set(rel.lookup(((1, 1),))) == {("a", 1), ("b", 1)}

    def test_lookup_multi_column(self):
        rel = Relation("r", 3, [("a", 1, "x"), ("a", 2, "x")])
        assert set(rel.lookup(((0, "a"), (2, "x")))) == \
            {("a", 1, "x"), ("a", 2, "x")}
        assert set(rel.lookup(((0, "a"), (1, 2)))) == {("a", 2, "x")}

    def test_index_sees_later_inserts(self):
        rel = Relation("r", 2, [("a", 1)])
        list(rel.lookup(((0, "a"),)))  # build the index
        rel.add(("a", 2))
        assert set(rel.lookup(((0, "a"),))) == {("a", 1), ("a", 2)}

    def test_lookup_matches_filter_scan(self):
        rows = [(i % 3, i % 5) for i in range(30)]
        rel = Relation("r", 2, rows)
        for value in range(3):
            expected = {row for row in rel if row[0] == value}
            assert set(rel.lookup(((0, value),))) == expected

    def test_copy_is_independent(self):
        rel = Relation("r", 1, [("a",)])
        cloned = rel.copy()
        cloned.add(("b",))
        assert len(rel) == 1 and len(cloned) == 2

    def test_copy_rebuilds_indexes_lazily(self):
        rel = Relation("r", 2, [("a", 1), ("a", 2), ("b", 1)])
        rel.index_for((0,))
        cloned = rel.copy()
        # Indexes are not carried: the copy pays only the row-set copy
        # and rebuilds an index on its first probe.
        assert (0,) not in cloned.backend.indexes
        # Nothing is aliased: mutations on either side leave the
        # other's index answers intact.
        cloned.add(("a", 3))
        cloned.discard(("b", 1))
        assert set(rel.lookup(((0, "a"),))) == {("a", 1), ("a", 2)}
        assert set(rel.lookup(((0, "b"),))) == {("b", 1)}
        assert set(cloned.lookup(((0, "a"),))) == \
            {("a", 1), ("a", 2), ("a", 3)}
        assert set(cloned.lookup(((0, "b"),))) == set()


class TestRawMerge:
    def test_merge_new_empty_batch(self):
        rel = Relation("r", 2, [("a", 1)])
        rel.index_for((0,))
        assert rel.raw_merge_new([]) == []
        assert len(rel) == 1
        assert set(rel.lookup(((0, "a"),))) == {("a", 1)}

    def test_merge_new_fully_overlapping_batch(self):
        rows = [("a", 1), ("b", 2)]
        rel = Relation("r", 2, rows)
        rel.index_for((1,))
        assert rel.raw_merge_new(list(rows)) == []
        assert len(rel) == 2
        # No duplicate index entries either.
        assert list(rel.lookup(((1, 1),))) == [("a", 1)]

    def test_merge_new_screens_duplicates_within_batch(self):
        rel = Relation("r", 1, [("a",)])
        fresh = rel.raw_merge_new([("a",), ("b",), ("b",), ("c",)])
        assert sorted(fresh) == [("b",), ("c",)]
        assert len(rel) == 3

    def test_merge_new_extends_live_indexes(self):
        rel = Relation("r", 2, [("a", 1)])
        rel.index_for((0,))
        rel.raw_merge_new([("a", 2), ("b", 1)])
        assert set(rel.lookup(((0, "a"),))) == {("a", 1), ("a", 2)}
        assert set(rel.lookup(((0, "b"),))) == {("b", 1)}

    def test_raw_merge_extends_live_indexes(self):
        rel = Relation("r", 2, [("a", 1)])
        rel.index_for((0,))
        rel.raw_merge([("a", 2)])  # caller-guaranteed disjoint
        assert len(rel) == 2
        assert set(rel.lookup(((0, "a"),))) == {("a", 1), ("a", 2)}

    def test_raw_merge_empty_batch(self):
        rel = Relation("r", 2, [("a", 1)])
        rel.raw_merge([])
        assert len(rel) == 1

    def test_merge_new_interned_storage_domain(self):
        symbols = SymbolTable()
        rel = Relation("r", 1, symbols=symbols)
        rel.add(("x",))
        coded_y = symbols.intern_row(("y",))
        assert rel.raw_merge_new([coded_y]) == [coded_y]
        assert rel.rows() == {("x",), ("y",)}


class TestDatabase:
    def test_add_and_facts(self):
        db = Database()
        assert db.add_fact("p", "a", 1)
        assert not db.add_fact("p", "a", 1)
        assert db.facts("p") == {("a", 1)}

    def test_unknown_relation(self):
        db = Database()
        assert db.facts("missing") == frozenset()
        with pytest.raises(EvaluationError):
            db.relation("missing")

    def test_arity_conflict(self):
        db = Database()
        db.add_fact("p", "a")
        with pytest.raises(EvaluationError):
            db.ensure("p", 2)

    def test_add_atom_requires_ground(self):
        db = Database()
        db.add_atom(atom("p", "a", 3))
        assert db.facts("p") == {("a", 3)}
        with pytest.raises(EvaluationError):
            db.add_atom(atom("p", "X"))

    def test_from_text_rejects_rules(self):
        with pytest.raises(EvaluationError):
            Database.from_text("p(X) :- q(X).")

    def test_text_roundtrip(self):
        db = Database.from_text("""
            par(ann, 90, bob, 60).
            par(bob, 60, carl, 30).
            likes(ann, 'New York').
        """)
        again = Database.from_text(db.to_text())
        assert again == db

    def test_merge_and_copy(self):
        left = Database({"p": [("a",)]})
        right = Database({"p": [("b",)], "q": [("c", 1)]})
        snapshot = left.copy()
        added = left.merge(right)
        assert added == 2
        assert left.facts("p") == {("a",), ("b",)}
        assert snapshot.facts("p") == {("a",)}

    def test_total_facts(self, chain_db):
        assert chain_db.total_facts() == 3

    def test_equality_covers_all_predicates(self):
        a = Database({"p": [("x",)]})
        b = Database({"p": [("x",)], "q": [("y",)]})
        assert a != b
        b2 = Database({"p": [("x",)]})
        assert a == b2

    def test_constructor_from_mapping(self):
        db = Database({"edge": [("a", "b"), ("b", "c")]})
        assert len(db.relation("edge")) == 2


class TestInternedDatabase:
    def test_merge_with_shared_symbol_table(self):
        symbols = SymbolTable()
        left = Database({"p": [("a",)], "q": [("c", 1)]}).interned(symbols)
        right = Database({"p": [("a",), ("b",)]}).interned(symbols)
        added = left.merge(right)
        assert added == 1
        assert left.facts("p") == {("a",), ("b",)}
        assert left.facts("q") == {("c", 1)}
        assert left.symbols is symbols and right.symbols is symbols

    def test_merge_raw_into_interned(self):
        interned = Database({"p": [("a",)]}).interned()
        raw = Database({"p": [("b",)]})
        assert interned.merge(raw) == 1
        assert interned.facts("p") == {("a",), ("b",)}
        # Merging never switches the storage mode of the target.
        assert interned.symbols is not None and raw.symbols is None

    def test_copy_shares_symbol_table_but_not_rows(self):
        symbols = SymbolTable()
        db = Database({"p": [("a",)]}).interned(symbols)
        cloned = db.copy()
        assert cloned.symbols is symbols
        cloned.add_fact("p", "b")
        assert db.facts("p") == {("a",)}
        assert cloned.facts("p") == {("a",), ("b",)}
        # The new constant landed in the shared table, so both sides
        # decode it identically.
        assert symbols.code("b") is not None

    def test_interned_is_idempotent(self):
        db = Database({"p": [("a",)]}).interned()
        assert db.interned() is db
