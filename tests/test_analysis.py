"""Tests for the static-analysis subsystem (``repro.analysis``)."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (CODES, PRECONDITION_PASSES, REGISTRY,
                            AnalysisReport, Diagnostic, analyze_program,
                            bundled_reports, lint_source)
from repro.datalog import Span, parse_program
from repro.workloads import (ALL_EXAMPLES, random_linear_program,
                             transitive_closure_program)

# ---------------------------------------------------------------------------
# One fixture per diagnostic code: lint input guaranteed to trigger it.
# The coverage test below fails when a code has no fixture, so every
# future code needs an entry here (and a row in docs/linting.md).
# ---------------------------------------------------------------------------

FIXTURES: dict[str, dict] = {
    "RR001": {"text": "p(X, Y) :- q(X)."},
    "SAFE001": {"text": "p(X) :- q(X), X > Y."},
    "SAFE002": {"text": "p(X) :- q(X), r(X + 1)."},
    "CONN001": {"text": "p(X, Y) :- q(X), r(Y)."},
    "LIN001": {"text": "p(X) :- e(X). p(X) :- q(X). q(X) :- p(X)."},
    "LIN002": {"text": "p(X, Y) :- e(X, Y). "
                       "p(X, Y) :- p(X, Z), p(Z, Y)."},
    "STRAT001": {"text": "p(X) :- e(X), not q(X). q(X) :- p(X)."},
    "ARITY001": {"text": "p(X) :- q(X), q(X, X)."},
    "TYPE001": {"text": "p(X) :- q(X, 1). p(X) :- q(X, abc)."},
    "DEAD001": {"text": "p(X) :- e(X). stray(X) :- f(X).",
                "query_text": "p(X)"},
    "DEAD002": {"text": "p(X) :- e(X). stray(X) :- f(X).",
                "query_text": "p(X)"},
    "VAR001": {"text": "p(X) :- q(X, Y)."},
    "IC001": {"text": "p(X) :- e(X).", "ic_text": "p(X) -> e(X)."},
    "IC002": {"text": "p(X) :- e(X).", "ic_text": "a(X), b(Y) -> ."},
    "IC003": {"text": "p(X) :- e(X).",
              "ic_text": "a(X, Y), b(Y, Z), c(X, Z) -> ."},
    "IC004": {"text": transitive_closure_program(),
              "ic_text": "other(X, Y) -> ."},
    "PERF001": {"text": "r0: p(X, Y) :- e(X, Y). "
                        "r1: p(X, Z) :- p(X, Y), e(Y, Z), Y != Z."},
    "PERF002": {"text": "p(X, Y) :- q(X, A), r(Y, B), A > 0, B > 0."},
    "PERF003": {"text": "p(X, Y) :- a(X), b(Y), c(X, Y)."},
    "PERF004": {"text": "r0: alive(X) :- seed(X). "
                        "r1: alive(X) :- alive(Y), node(X)."},
    # TYPE002 needs the *inferred* domains to conflict (the constants
    # sit in comparisons, where TYPE001 never looks).
    "TYPE002": {"text": "p(X) :- e(X), X = 1. p(X) :- f(X), X = abc."},
    "DEAD003": {"text": "p(X) :- e(X), X = 1, X > 5. q(X) :- p(X)."},
    "SAT001": {"text": "p(X) :- e(X), X = 1, X > 5."},
    "BOUND001": {"text": "sg(X, Y) :- flat(X, Y). "
                         "sg(X, Y) :- up(X, A), sg(A, B), sg(B, C), "
                         "down(C, Y)."},
    "PARSE001": {"text": "p(X :-"},
}


class TestDiagnostics:
    def test_json_round_trip_with_span(self):
        d = Diagnostic(code="RR001", severity="error", message="m",
                       span=Span(3, 5, 3, 12), rule_label="r1",
                       subject="p", pass_name="range-restriction")
        again = Diagnostic.from_dict(json.loads(json.dumps(d.to_dict())))
        assert again == d

    def test_json_round_trip_without_span(self):
        d = Diagnostic(code="LIN001", severity="error", message="m")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_report_round_trip(self):
        report = lint_source(FIXTURES["STRAT001"]["text"])
        again = AnalysisReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert again.diagnostics == report.diagnostics
        assert again.counts() == report.counts()

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="X", severity="fatal", message="m")

    def test_report_orders_errors_first(self):
        report = lint_source("p(X, Y) :- q(X).\n"
                             "s(X) :- q(X, Y).")
        severities = [d.severity for d in report]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index)

    def test_render_includes_excerpt_and_summary(self):
        text = lint_source("p(X, Y) :- q(X).").render()
        assert "RR001" in text and "^" in text and "error" in text.lower()


class TestRegistry:
    def test_at_least_ten_passes(self):
        assert len(REGISTRY) >= 10

    def test_every_code_owned_by_exactly_one_pass(self):
        owners: dict[str, str] = {}
        for name, analysis_pass in REGISTRY.items():
            for code in analysis_pass.codes:
                assert code not in owners, f"{code} owned twice"
                owners[code] = name
        # PARSE001 is emitted by the linter front end, not a pass.
        assert set(owners) == set(CODES) - {"PARSE001"}

    def test_every_code_has_a_fixture(self):
        assert set(FIXTURES) == set(CODES)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            lint_source("p(X) :- q(X).", names=["no-such-pass"])

    def test_docs_catalogue_lists_every_code(self):
        # docs/linting.md is the user-facing catalogue; a new code
        # without a table row drifts silently without this check.
        import pathlib

        docs = pathlib.Path(__file__).resolve().parent.parent \
            / "docs" / "linting.md"
        text = docs.read_text()
        missing = [code for code in CODES if f"`{code}`" not in text]
        assert not missing, \
            f"codes missing from docs/linting.md: {missing}"

    def test_pass_selection(self):
        report = lint_source(FIXTURES["RR001"]["text"],
                             names=["range-restriction"])
        assert report.codes() == {"RR001"}


class TestEveryCodeFires:
    @pytest.mark.parametrize("code", sorted(FIXTURES))
    def test_fixture_triggers_code(self, code):
        report = lint_source(FIXTURES[code]["text"],
                             ic_text=FIXTURES[code].get("ic_text"),
                             query_text=FIXTURES[code].get("query_text"))
        assert code in report.codes(), report.render()

    @pytest.mark.parametrize("code", sorted(FIXTURES))
    def test_severity_matches_table(self, code):
        report = lint_source(FIXTURES[code]["text"],
                             ic_text=FIXTURES[code].get("ic_text"),
                             query_text=FIXTURES[code].get("query_text"))
        finding = next(d for d in report if d.code == code)
        assert finding.severity == CODES[code][0]


class TestSpansOnFindings:
    def test_findings_carry_line_and_column(self):
        report = lint_source("e(a).\np(X, Y) :- q(X).")
        finding = next(d for d in report if d.code == "RR001")
        assert finding.span is not None
        assert (finding.span.line, finding.span.column) == (2, 1)

    def test_multi_violation_program_reports_all_at_once(self):
        # Three independent assumption violations -> one report.
        report = lint_source("""
            p(X, Y) :- q(X).
            a(X) :- e(X). a(X) :- b(X). b(X) :- a(X).
            s(X) :- t(X), X > Z.
        """)
        assert {"RR001", "LIN001", "SAFE001"} <= report.codes()
        lines = {d.span.line for d in report.errors if d.span is not None}
        assert len(lines) >= 3


class TestQueryDependentPasses:
    def test_reachability_skipped_without_query(self):
        report = lint_source("p(X) :- e(X). stray(X) :- f(X).")
        assert "DEAD001" not in report.codes()

    def test_query_in_source_text_is_used(self):
        report = lint_source(
            "p(X) :- e(X). stray(X) :- f(X). ?- p(X).")
        assert {"DEAD001", "DEAD002"} <= report.codes()
        subjects = {d.subject for d in report if d.code == "DEAD002"}
        assert subjects == {"stray"}

    def test_useful_residue_suppresses_ic004(self):
        # Example 4.3's IC produces real residues: no IC004.
        from repro.workloads import example_4_3

        example = example_4_3()
        report = analyze_program(example.program, ics=example.ics)
        assert "IC004" not in report.codes()
        assert report.ok


class TestPreconditionParity:
    """A program passes the load-time gate iff lint finds no
    precondition errors — same passes, same verdict."""

    def test_valid_program_has_no_precondition_errors(self, tc_program):
        report = analyze_program(tc_program, names=PRECONDITION_PASSES)
        assert report.ok

    def test_invalid_program_rejected_with_same_code(self):
        program = parse_program("p(X, Y) :- q(X).")
        report = analyze_program(program, names=PRECONDITION_PASSES)
        assert not report.ok
        assert {d.code for d in report.errors} == {"RR001"}


class TestBundledTargets:
    def test_all_bundled_programs_error_free(self):
        seen = []
        for target, report in bundled_reports():
            seen.append(target.name)
            assert report.ok, f"{target.name}: {report.render()}"
        assert len(seen) >= len(ALL_EXAMPLES) + 2

    def test_examples_scripts_included(self, tmp_path):
        script = tmp_path / "demo.py"
        script.write_text('PROGRAM = "p(X) :- e(X)."\n'
                          'CONSTRAINTS = "e(X) -> q(X)."\n')
        names = [t.name for t, _ in bundled_reports(examples_dir=tmp_path)]
        assert "examples/demo.py" in names


class TestGeneratorPrograms:
    """Property: every program the workload generators emit is lint
    clean — not merely error-free, zero findings of any severity."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_linear_programs_lint_clean(self, seed):
        source, _db = random_linear_program(random.Random(seed))
        report = lint_source(source)
        assert report.clean, f"seed {seed}:\n{report.render()}"

    def test_transitive_closure_lint_clean(self):
        assert lint_source(transitive_closure_program()).clean
