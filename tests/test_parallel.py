"""Sharded parallel execution: parity, policy, and plumbing.

The parallel executor's contract is exact equivalence with the
sequential compiled executor — same facts, same counters, same budget
payloads, same chaos ordinals — with sharding visible only through the
``parallel:*`` chaos stages and the executor's own introspection.
These tests pin that contract across worker modes (in-process, thread
pool, fork pool), shard counts, and the fallback paths (arithmetic
rules, nullary deltas, mutable non-anchor sources).
"""

import random

import pytest

from repro.datalog import parse_program
from repro.engine import (DEFAULT_SHARDS, ShardExecutor,
                          choose_partition_key, evaluate,
                          evaluate_with_magic, explain_kernels)
from repro.engine.parallel import validate_parallel_mode
from repro.errors import BudgetExceededError, EvaluationError
from repro.facts.backend import DictBackend, ShardedBackend
from repro.facts.database import Database
from repro.facts.relation import Relation
from repro.runtime import ChaosError
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosPlan
from repro.workloads import random_digraph, transitive_closure_program

TC = transitive_closure_program()

SAME_GEN = """
    r0: sg(X, X) :- person(X).
    r1: sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp).
"""

ARITH = """
    r0: dist(X, Y, 1) :- edge(X, Y).
    r1: dist(X, Y, D1) :- dist(X, Z, D), edge(Z, Y), D < 6,
                          D1 = D + 1.
"""


def _tc_db(nodes=40, edges=120, seed=3):
    return random_digraph(nodes, edges, random.Random(seed))


def _facts(result):
    return {pred: frozenset(result.facts(pred))
            for pred in result.program.idb_predicates}


# ---------------------------------------------------------------------------
# Partitioning primitives
# ---------------------------------------------------------------------------

class TestPartitioning:
    def test_choose_partition_key_prefers_most_distinct(self):
        relation = Relation("r", 2)
        for i in range(6):
            relation.add(("same", f"v{i}"))
        assert choose_partition_key(relation) == 1

    def test_choose_partition_key_breaks_ties_low(self):
        relation = Relation("r", 2)
        relation.add(("a", "b"))
        relation.add(("c", "d"))
        assert choose_partition_key(relation) == 0

    def test_sharded_backend_buckets_cover_rows(self):
        backend = ShardedBackend(3, key_column=0)
        rows = [(f"n{i}", f"m{i}") for i in range(20)]
        backend.merge_new(rows)
        scattered = [row for bucket in backend.shard_lists
                     for row in bucket]
        assert sorted(scattered) == sorted(rows)
        assert sum(len(b) for b in backend.shard_lists) == len(backend)

    def test_sharded_backend_rebalance_repartitions(self):
        backend = ShardedBackend(2, key_column=0)
        backend.merge_new([("same", f"v{i}") for i in range(10)])
        assert backend.imbalance() == pytest.approx(2.0)
        assert backend.rebalance(1)
        assert backend.key_column == 1
        assert backend.imbalance() < 2.0
        assert backend.rebalances == 1

    def test_executor_make_delta_is_sharded(self):
        executor = ShardExecutor(4)
        target = Relation("p", 2)
        delta = executor.make_delta("p", target)
        assert isinstance(delta.backend, ShardedBackend)
        assert delta.backend.shard_count == 4

    def test_executor_make_delta_nullary_stays_plain(self):
        executor = ShardExecutor(4)
        delta = executor.make_delta("seed", Relation("seed", 0))
        assert isinstance(delta.backend, DictBackend)
        assert not isinstance(delta.backend, ShardedBackend)

    def test_rebalance_if_skewed_rechooses_key(self):
        executor = ShardExecutor(2)
        delta = executor.make_delta("p", Relation("p", 2))
        # Key column 0 is constant: every row lands in one bucket.
        delta.add_all([("same", f"v{i}") for i in range(12)])
        assert executor.rebalance_if_skewed(delta)
        assert executor.partition_keys["p"] == 1
        assert executor.rebalances == 1
        assert not executor.rebalance_if_skewed(delta)

    def test_scatter_reuses_live_buckets(self):
        executor = ShardExecutor(3)
        delta = executor.make_delta("p", Relation("p", 2))
        delta.add_all([(f"n{i}", f"m{i}") for i in range(9)])
        assert executor.scatter(delta) is delta.backend.shard_lists

    def test_validation(self):
        with pytest.raises(EvaluationError):
            validate_parallel_mode("gpu")
        with pytest.raises(EvaluationError):
            ShardExecutor(0)


# ---------------------------------------------------------------------------
# Parity with the sequential compiled executor
# ---------------------------------------------------------------------------

class TestParity:
    @pytest.mark.parametrize("shards", (1, 2, 4))
    @pytest.mark.parametrize("interning", ("off", "on"))
    def test_seminaive_exact_stats_parity(self, shards, interning):
        program = parse_program(TC)
        db = _tc_db()
        sequential = evaluate(program, db, executor="compiled",
                              planner="adaptive", interning=interning)
        parallel = evaluate(program, db, executor="parallel",
                            planner="adaptive", interning=interning,
                            shards=shards)
        assert _facts(sequential) == _facts(parallel)
        assert sequential.stats.as_dict() == parallel.stats.as_dict()

    @pytest.mark.parametrize("mode", ("serial", "thread", "fork"))
    def test_forced_worker_modes_match(self, mode):
        program = parse_program(SAME_GEN)
        db = Database()
        for parent, child in [("a", "b"), ("a", "c"), ("b", "d"),
                              ("b", "e"), ("c", "f")]:
            db.add_fact("par", child, parent)
        for person in "abcdef":
            db.add_fact("person", person)
        sequential = evaluate(program, db, executor="compiled",
                              interning="on")
        parallel = evaluate(program, db, executor="parallel",
                            interning="on", shards=2,
                            parallel_mode=mode)
        assert _facts(sequential) == _facts(parallel)
        assert sequential.stats.as_dict() == parallel.stats.as_dict()

    def test_naive_method_parity(self):
        program = parse_program(TC)
        db = _tc_db(nodes=25, edges=60, seed=9)
        sequential = evaluate(program, db, method="naive",
                              executor="compiled", interning="on")
        parallel = evaluate(program, db, method="naive",
                            executor="parallel", interning="on",
                            shards=3)
        assert _facts(sequential) == _facts(parallel)
        assert sequential.stats.as_dict() == parallel.stats.as_dict()

    def test_magic_evaluation_parity(self):
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant, Variable

        program = parse_program(TC)
        db = _tc_db(nodes=30, edges=80, seed=5)
        query = Atom("reach", (Constant("n0"), Variable("Y")))
        sequential = evaluate_with_magic(program, db, query,
                                         executor="compiled")
        parallel = evaluate_with_magic(program, db, query,
                                       executor="parallel", shards=4)
        assert sequential.magic is not None
        assert parallel.magic is not None
        assert frozenset(sequential.magic.answers(sequential.idb)) \
            == frozenset(parallel.magic.answers(parallel.idb))
        assert sequential.stats.derivations == parallel.stats.derivations

    def test_arith_rules_fall_back_in_process(self):
        program = parse_program(ARITH)
        db = Database()
        for src, dst in [("a", "b"), ("b", "c"), ("c", "d")]:
            db.add_fact("edge", src, dst)
        sequential = evaluate(program, db, executor="compiled",
                              interning="on")
        # Forced fork mode must not ship arithmetic rules to workers
        # (result interning would diverge); the firing shards in
        # process instead and results stay identical.
        parallel = evaluate(program, db, executor="parallel",
                            interning="on", shards=2,
                            parallel_mode="fork")
        assert _facts(sequential) == _facts(parallel)
        assert sequential.stats.as_dict() == parallel.stats.as_dict()


# ---------------------------------------------------------------------------
# Budgets and chaos seams
# ---------------------------------------------------------------------------

class TestResilience:
    def test_budget_payload_matches_sequential(self):
        program = parse_program(TC)
        db = _tc_db()

        def payload(**knobs):
            with pytest.raises(BudgetExceededError) as info:
                evaluate(program, db,
                         budget=Budget(max_derivations=100), **knobs)
            error = info.value
            return (error.resource, error.limit, error.spent,
                    error.last_round)

        assert payload(executor="compiled") == payload(
            executor="parallel", shards=4)

    def test_fork_workers_do_not_outlive_evaluation(self):
        import multiprocessing

        program = parse_program(SAME_GEN)
        db = Database()
        for parent, child in [("a", "b"), ("a", "c"), ("b", "d")]:
            db.add_fact("par", child, parent)
        for person in "abcd":
            db.add_fact("person", person)
        before = set(multiprocessing.active_children())
        evaluate(program, db, executor="parallel", interning="on",
                 shards=2, parallel_mode="fork")
        for process in multiprocessing.active_children():
            if process not in before:
                process.join(timeout=5)
        assert set(multiprocessing.active_children()) <= before

    def test_budget_exhaustion_tears_down_fork_pool(self):
        import multiprocessing

        program = parse_program(TC)
        db = _tc_db()
        before = set(multiprocessing.active_children())
        with pytest.raises(BudgetExceededError):
            evaluate(program, db, executor="parallel", interning="on",
                     shards=2, parallel_mode="fork",
                     budget=Budget(max_derivations=50))
        for process in multiprocessing.active_children():
            if process not in before:
                process.join(timeout=5)
        assert set(multiprocessing.active_children()) <= before

    @pytest.mark.parametrize("stage", ("parallel:scatter",
                                       "parallel:merge",
                                       "parallel:barrier"))
    def test_chaos_stages_are_injectable(self, stage):
        program = parse_program(TC)
        db = _tc_db(nodes=15, edges=40)
        plan = ChaosPlan().fail_stage(stage)
        with plan.active():
            with pytest.raises(ChaosError):
                evaluate(program, db, executor="parallel", shards=2)
        assert ("stage", stage) in plan.triggered

    def test_parallel_stages_silent_under_sequential(self):
        program = parse_program(TC)
        db = _tc_db(nodes=15, edges=40)
        plan = ChaosPlan().fail_stage("parallel:scatter")
        with plan.active():
            evaluate(program, db, executor="compiled")
        assert plan.triggered == []


# ---------------------------------------------------------------------------
# Introspection
# ---------------------------------------------------------------------------

class TestIntrospection:
    def test_explain_kernels_parallel_section(self):
        program = parse_program(TC)
        db = _tc_db(nodes=15, edges=40)
        text = explain_kernels(program, db, executor="parallel",
                               shards=4)
        assert "parallel execution: 4 shards" in text
        assert "hash-partitioned on column" in text
        assert "reused across 4 shard calls" in text

    def test_explain_kernels_default_shard_count(self):
        program = parse_program(TC)
        text = explain_kernels(program, Database(),
                               executor="parallel")
        assert f"parallel execution: {DEFAULT_SHARDS} shards" in text

    def test_describe_reports_keys_and_rebalances(self):
        executor = ShardExecutor(2, mode="serial")
        delta = executor.make_delta("p", Relation("p", 2))
        delta.add_all([("same", f"v{i}") for i in range(12)])
        executor.rebalance_if_skewed(delta)
        text = executor.describe()
        assert "2 shards" in text
        assert "p->col1" in text
        assert "1 rebalances" in text
