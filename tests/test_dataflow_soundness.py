"""Soundness fuzzing for the dataflow analysis.

Two obligations, both differential:

1. **Emptiness soundness.**  Any IDB predicate the analysis proves
   empty must evaluate to zero rows under every executor/planner/method
   combination.  Programs are generated over small integer EDBs with
   comparison/equality rules biased toward (but not guaranteed to
   produce) unsatisfiable conjunctions, so both verdicts get exercised.

2. **Observational transparency.**  Running the engine with
   ``dataflow="on"`` must not change facts, derivation counters, budget
   payloads or chaos fault ordinals on any workload.  Dead-rule
   skipping may legitimately shed the *dead* rule's lookup/firing
   counters, but ``random_linear_program`` output is lint-clean (no
   dead rules), so there the full stats dict must match bit-for-bit.
"""

import random

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - dev extra not installed
    HAVE_HYPOTHESIS = False

from repro.analysis.dataflow import analyze_dataflow
from repro.datalog import parse_program
from repro.engine import evaluate
from repro.errors import BudgetExceededError
from repro.facts import Database
from repro.runtime import ChaosError
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosPlan
from repro.workloads import random_linear_program

#: Trimmed combo matrix: one representative per executor/method axis
#: plus the planner variants that change join order.
COMBOS = [
    {"executor": "compiled", "planner": "greedy"},
    {"executor": "compiled", "planner": "adaptive"},
    {"executor": "interpreted", "planner": "source"},
    {"executor": "compiled", "method": "naive"},
    {"executor": "vectorized", "interning": "on", "planner": "adaptive"},
    {"executor": "parallel", "shards": 2, "parallel_mode": "serial"},
]


def build_program(rng):
    """A small random program over integer EDBs e/2 and f/2.

    Rules mix joins, recursion and integer-constant comparisons chosen
    so some conjunctions are satisfiable and others provably are not
    (EDB values live in 0..5; constants range over -2..12).
    """
    edb = Database()
    for _ in range(rng.randint(3, 8)):
        edb.add_fact("e", rng.randint(0, 5), rng.randint(0, 5))
    for _ in range(rng.randint(2, 6)):
        edb.add_fact("f", rng.randint(0, 5), rng.randint(0, 5))
    ops = ("<", "<=", ">", ">=", "=", "!=")
    lines = ["b0: p(X, Y) :- e(X, Y).",
             "r0: p(X, Z) :- p(X, Y), f(Y, Z)."]
    flat_emitted = False
    for i in range(rng.randint(1, 4)):
        op1 = rng.choice(ops)
        c1 = rng.randint(-2, 12)
        if rng.random() < 0.5:
            op2 = rng.choice(ops)
            c2 = rng.randint(-2, 12)
            lines.append(f"q{i}: out{i}(X) :- p(X, Y), "
                         f"X {op1} {c1}, Y {op2} {c2}.")
        else:
            lines.append(f"q{i}: flat{i}(X, Y) :- e(X, Y), "
                         f"X {op1} {c1}.")
            flat_emitted = True
    if flat_emitted and rng.random() < 0.5:
        lines.append("c0: chained(X) :- flat0(X, X)."
                     if "flat0" in "\n".join(lines)
                     else "c0: chained(X) :- p(X, X).")
    return parse_program("\n".join(lines)), edb


@pytest.mark.parametrize("seed", range(30))
def test_inferred_empty_predicates_evaluate_empty(seed):
    rng = random.Random(seed)
    program, edb = build_program(rng)
    flow = analyze_dataflow(program, edb=edb)
    empty_idb = flow.empty & set(program.idb_predicates)
    combo = COMBOS[seed % len(COMBOS)]
    result = evaluate(program, edb, **combo)
    for pred in empty_idb:
        assert result.count(pred) == 0, \
            (f"seed {seed}: {pred} inferred empty but evaluated "
             f"to {result.count(pred)} rows under {combo}")
    # The inverse is not required (the analysis over-approximates),
    # but the verdict must also never flip the actual facts:
    flowed = evaluate(program, edb, dataflow="on", **combo)
    for pred in program.idb_predicates:
        assert flowed.facts(pred) == result.facts(pred)


@pytest.mark.parametrize("seed", range(30, 40))
def test_every_combo_respects_empty_verdicts(seed):
    """One seed, the full combo sweep — emptiness must hold under all
    join orders, executors and evaluation methods."""
    rng = random.Random(seed)
    program, edb = build_program(rng)
    flow = analyze_dataflow(program, edb=edb)
    empty_idb = flow.empty & set(program.idb_predicates)
    if not empty_idb:
        pytest.skip(f"seed {seed}: analysis proved nothing empty")
    for combo in COMBOS:
        result = evaluate(program, edb, **combo)
        for pred in empty_idb:
            assert result.count(pred) == 0, (seed, pred, combo)


if HAVE_HYPOTHESIS:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_hypothesis_emptiness_soundness(seed):
        rng = random.Random(seed)
        program, edb = build_program(rng)
        flow = analyze_dataflow(program, edb=edb)
        empty_idb = flow.empty & set(program.idb_predicates)
        result = evaluate(program, edb, dataflow="on",
                          planner="adaptive")
        for pred in empty_idb:
            assert result.count(pred) == 0, (seed, pred)
        baseline = evaluate(program, edb, planner="adaptive")
        for pred in program.idb_predicates:
            assert result.facts(pred) == baseline.facts(pred)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_hypothesis_size_bounds_are_upper_bounds(seed):
        rng = random.Random(seed)
        program, edb = build_program(rng)
        flow = analyze_dataflow(program, edb=edb)
        result = evaluate(program, edb)
        for pred in program.idb_predicates:
            assert result.count(pred) <= flow.size_bound(pred), \
                (seed, pred, result.count(pred), flow.size_bound(pred))


class TestLintCleanParity:
    """random_linear_program output has no dead rules or decidable
    checks, so dataflow on/off must agree on *every* counter."""

    @pytest.mark.parametrize("seed", range(6))
    def test_stats_dict_identical(self, seed):
        text, edb = random_linear_program(random.Random(seed))
        program = parse_program(text)
        combo = COMBOS[seed % len(COMBOS)]
        baseline = evaluate(program, edb, **combo)
        flowed = evaluate(program, edb, dataflow="on", **combo)
        for pred in program.idb_predicates:
            assert flowed.facts(pred) == baseline.facts(pred)
        assert flowed.stats.as_dict() == baseline.stats.as_dict()

    @pytest.mark.parametrize("seed", (3, 11))
    def test_budget_payloads_unchanged(self, seed):
        text, edb = random_linear_program(random.Random(seed))
        program = parse_program(text)
        payloads = set()
        for dataflow in ("off", "on"):
            budget = Budget(max_derivations=120)
            with pytest.raises(BudgetExceededError) as info:
                evaluate(program, edb, dataflow=dataflow, budget=budget)
            error = info.value
            payloads.add((error.resource, error.limit, error.spent,
                          error.last_round))
        assert len(payloads) == 1, payloads

    @pytest.mark.parametrize("seed", (5,))
    def test_chaos_ordinals_unchanged(self, seed):
        text, edb = random_linear_program(random.Random(seed))
        program = parse_program(text)
        triggered = set()
        for dataflow in ("off", "on"):
            plan = ChaosPlan().fail_derivation(40)
            with plan.active():
                with pytest.raises(ChaosError):
                    evaluate(program, edb, dataflow=dataflow)
            triggered.add(tuple(plan.triggered))
        assert len(triggered) == 1, triggered
