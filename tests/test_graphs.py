"""Unit tests for the AP-graph, SD-graph and pattern graph (Section 3)."""

import pytest

from repro.core.apgraph import (build_ap_graph, position_node,
                                same_rule_shared_positions, subgoal_node)
from repro.core.pattern import build_pattern_graph
from repro.core.sdgraph import build_sd_graph
from repro.constraints import ic_from_text
from repro.datalog import parse_program
from repro.datalog.atoms import atom
from repro.errors import ConstraintError, ProgramError


class TestAPGraph:
    def test_genealogy_structure(self, ex43):
        ap = build_ap_graph(ex43.program, "anc")
        # par occurs once in each rule.
        assert len(ap.subgoals) == 2
        # In r1, par's args 1,2 feed recursive positions 3,4.
        par_r1 = subgoal_node("r1", 1)
        undirected = {(e.position, e.arg_pos)
                      for e in ap.undirected_from(par_r1)}
        assert undirected == {(3, 1), (4, 2)}

    def test_directed_edges_carry_output_variables(self, ex43):
        ap = build_ap_graph(ex43.program, "anc")
        # Output vars X (pos 1) and Xa (pos 2) thread through the
        # recursive call unchanged: p_1 -> p_1 and p_2 -> p_2 edges.
        threading = {(e.position, e.target)
                     for e in ap.directed if e.arg_pos is None}
        assert (1, position_node(1)) in threading
        assert (2, position_node(2)) in threading
        # Output vars Y (pos 3) and Ya (pos 4) land in par of r1.
        landings = {(e.position, e.target, e.arg_pos)
                    for e in ap.directed if e.arg_pos is not None
                    and e.rule == "r1"}
        assert (3, subgoal_node("r1", 1), 3) in landings
        assert (4, subgoal_node("r1", 1), 4) in landings

    def test_dummy_links_for_non_recursive_sharing(self):
        program = parse_program("""
            r0: p(X) :- e(X).
            r1: p(X) :- a(X, W), b(W, Y), p(Y).
        """)
        ap = build_ap_graph(program, "p")
        # a and b share W, which does not touch the recursive call.
        assert any(set(d[:2]) == {subgoal_node("r1", 0),
                                  subgoal_node("r1", 1)}
                   for d in ap.dummies)

    def test_requires_linear(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, Z), t(Z, Y).")
        with pytest.raises(ProgramError):
            build_ap_graph(program, "t")

    def test_unknown_predicate(self, ex43):
        with pytest.raises(ProgramError):
            build_ap_graph(ex43.program, "ghost")


class TestSDGraph:
    def test_genealogy_par_to_par_edge(self, ex43):
        sd = build_sd_graph(ex43.program, "anc")
        par_r1 = subgoal_node("r1", 1)
        edges = [e for e in sd.directed
                 if e.source == par_r1 and e.target == par_r1
                 and e.expansion == ("r1",)]
        assert len(edges) == 1
        # par's args 1,2 equal the next level's args 3,4.
        assert edges[0].pairs == {(1, 3), (2, 4)}

    def test_edge_into_exit_rule(self, ex43):
        sd = build_sd_graph(ex43.program, "anc")
        par_r0 = subgoal_node("r0", 0)
        assert any(e.target == par_r0 and e.expansion == ("r0",)
                   for e in sd.directed)

    def test_multi_hop_edges(self, ex41):
        """Example 4.1: experienced connects to boss three levels down
        through the argument-threading p_1 -> p_2 -> p_3 chain."""
        sd = build_sd_graph(ex41.program, "triple")
        experienced = subgoal_node("r2", 1)
        boss = subgoal_node("r2", 0)
        spans = {e.expansion for e in sd.directed
                 if e.source == experienced and e.target == boss}
        assert ("r2", "r2", "r2") in spans

    def test_same_rule_undirected_edges(self, ex41):
        sd = build_sd_graph(ex41.program, "triple")
        boss = subgoal_node("r2", 0)
        experienced = subgoal_node("r2", 1)
        pairs = [e.pairs for e in sd.undirected
                 if e.source == boss and e.target == experienced]
        assert pairs == [frozenset({(1, 1)})]  # they share U

    def test_max_hops_bounds_edges(self, ex41):
        shallow = build_sd_graph(ex41.program, "triple", max_hops=1)
        deep = build_sd_graph(ex41.program, "triple", max_hops=4)
        assert len(shallow.directed) < len(deep.directed)


class TestPatternGraph:
    def test_chain_labels(self, ex43):
        pattern = build_pattern_graph(ex43.ic("ic1"))
        assert pattern.length == 3
        assert pattern.edge_pairs[0] == {(1, 3), (2, 4)}

    def test_reversed_flips_labels(self, ex43):
        pattern = build_pattern_graph(ex43.ic("ic1"))
        flipped = pattern.reversed()
        assert flipped.atoms == tuple(reversed(pattern.atoms))
        assert flipped.edge_pairs[-1] == {(3, 1), (4, 2)}

    def test_single_atom(self, ex41):
        pattern = build_pattern_graph(ex41.ic("ic1"))
        assert pattern.length == 1 and pattern.edge_pairs == ()

    def test_non_chain_rejected(self):
        ic = ic_from_text("a(X, Y), b(Y, Z), c(Z, X) -> .")
        with pytest.raises(ConstraintError):
            build_pattern_graph(ic)


class TestSharedPositions:
    def test_pairs(self):
        pairs = same_rule_shared_positions(atom("a", "X", "Y"),
                                           atom("b", "Y", "Z", "X"))
        assert pairs == {(1, 3), (2, 1)}

    def test_constants_do_not_share(self):
        assert same_rule_shared_positions(atom("a", "c1"),
                                          atom("b", "c1")) == frozenset()
