"""Tests for pretty printing and the benchmark harness utilities."""

import pytest

from repro.bench.harness import (Measurement, Table, check_same_answers,
                                 comparison_row, measure)
from repro.datalog import (format_program, format_rule, format_table,
                           parse_program, side_by_side)
from repro.datalog.pretty import format_substitution
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import Substitution
from repro.engine import evaluate
from repro.facts import Database


class TestPretty:
    def test_format_rule_with_label(self, tc_program):
        assert format_rule(tc_program.rule("r0")).startswith("r0: ")
        assert not format_rule(tc_program.rule("r0"),
                               show_label=False).startswith("r0")

    def test_format_program_roundtrips(self, tc_program):
        text = format_program(tc_program)
        assert parse_program(text) == tc_program

    def test_group_by_head(self):
        program = parse_program("""
            a(X) :- e(X).
            b(X) :- e(X).
            a(X) :- f(X).
        """)
        grouped = format_program(program, group_by_head=True)
        blocks = grouped.split("\n\n")
        assert len(blocks) == 2
        assert blocks[0].count("a(X)") == 2

    def test_format_substitution_sorted(self):
        subst = Substitution({Variable("Z"): Constant(1),
                              Variable("A"): Constant(2)})
        assert format_substitution(subst) == "{A/2, Z/1}"

    def test_side_by_side_alignment(self):
        view = side_by_side("left\nlines", "right")
        assert "|" in view
        assert all(line.index("|") == view.splitlines()[0].index("|")
                   for line in view.splitlines() if "|" in line)

    def test_format_table_widths(self):
        table = format_table(["col", "x"], [["value", 1], ["v", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("col")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4


class TestHarness:
    def test_measure_collects_counters(self, tc_program, chain_db):
        m = measure("plain", lambda: evaluate(tc_program, chain_db),
                    "reach", repeats=2)
        assert len(m.seconds) == 2
        assert m.answers == 6
        assert m.counters["derivations"] == 6
        assert m.rows_for_rules("r1") > 0

    def test_speedup(self):
        fast = Measurement("fast", seconds=[0.1])
        slow = Measurement("slow", seconds=[0.4])
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_table_render(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2)
        table.note("a note")
        text = table.render()
        assert "demo" in text and "note: a note" in text

    def test_check_same_answers(self):
        a = Measurement("a", answers=5)
        b = Measurement("b", answers=5)
        c = Measurement("c", answers=6)
        assert check_same_answers([a, b])
        assert not check_same_answers([a, c])

    def test_comparison_row_flags_mismatch(self):
        a = Measurement("a", seconds=[0.1], answers=5,
                        counters={"atom_lookups": 3})
        c = Measurement("c", seconds=[0.1], answers=6,
                        counters={"atom_lookups": 3})
        row = comparison_row("n", [a, c])
        assert "MISMATCH" in str(row[-1])

    def test_measure_records_budget_exceeded(self, tc_program, chain_db):
        m = measure("slow", lambda: evaluate(tc_program, chain_db),
                    "reach", repeats=2, timeout_s=0.0)
        assert m.budget_exceeded
        assert len(m.seconds) == 1  # stops after the first timed-out run
        assert m.answers == 0
        assert "derivations" in m.counters  # partial counters survive

    def test_measure_timeout_disabled_with_none(self, tc_program,
                                                chain_db):
        m = measure("ok", lambda: evaluate(tc_program, chain_db),
                    "reach", repeats=1, timeout_s=None)
        assert not m.budget_exceeded and m.answers == 6

    def test_comparison_row_renders_timeout(self):
        ok = Measurement("ok", seconds=[0.1], answers=5,
                         counters={"atom_lookups": 3})
        timed_out = Measurement("t", seconds=[0.2], answers=0,
                                counters={"atom_lookups": 1},
                                budget_exceeded=True)
        row = comparison_row("n", [ok, timed_out])
        assert "TIMEOUT" in [str(cell) for cell in row]
        assert str(row[-1]) == "budget_exceeded"


class TestFastExperiments:
    """Smoke tests for the cheap experiments (E7/E8 are sub-second)."""

    def test_e7(self):
        from repro.bench import experiment_e7
        table = experiment_e7()
        assert len(table.rows) == 4
        by_name = {row[0]: row for row in table.rows}
        # Every example has sequence-level residues the rule-level
        # reading misses.
        for name in ("example_2_1", "example_3_2", "example_4_3"):
            assert by_name[name][2] > 0
            assert by_name[name][2] > by_name[name][3] or \
                by_name[name][3] == 0

    def test_e8(self):
        from repro.bench import experiment_e8
        table = experiment_e8(repeats=1)
        trees = {row[0] for row in table.rows}
        assert trees == {"r0", "r1 r2", "r3"}
        subsumed = {row[0]: row[1] for row in table.rows}
        assert subsumed["r3"] == "yes"


class TestTableCSV:
    def test_to_csv(self, tmp_path):
        table = Table("demo", ["a", "b"])
        table.add_row(1, "x,y")
        table.note("hello")
        path = tmp_path / "t.csv"
        table.to_csv(path)
        text = path.read_text()
        assert text.startswith("# demo\n# hello\n")
        assert 'a,b' in text and '"x,y"' in text
