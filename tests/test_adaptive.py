"""Adaptive planning: statistics costs, drift replanning, body fusion.

Covers the statistics-driven planner end to end: the cost model orders
probes by estimated selectivity, the kernel cache recompiles when
observed cardinalities drift past the threshold (and provably no more
than O(log n) times for monotone growth), and interned kernels fuse
pure-atom bodies into generated comprehensions without changing any
observable result or counter.
"""

import pytest

from repro.datalog import parse_program
from repro.engine import evaluate
from repro.engine.compile import KernelCache, compile_rule
from repro.engine.plan import explain_kernels, explain_plan
from repro.facts import Database
from repro.facts.symbols import SymbolTable


TC = """
r0: tc(X, Y) :- edge(X, Y).
r1: tc(X, Z) :- tc(X, Y), edge(Y, Z).
"""


def chain_db(n=30):
    db = Database()
    db.ensure("edge", 2)
    for i in range(n):
        db.add_fact("edge", f"n{i}", f"n{i + 1}")
    return db


class TestDriftReplanning:
    def _rule(self):
        return parse_program(TC).rules[1]

    def test_stable_sizes_compile_once(self):
        cache = KernelCache(adaptive=True)
        rule = self._rule()
        sizes = {"tc": 100, "edge": 100}
        first = cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        again = cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        assert first is again
        assert cache.replans == 0

    def test_drift_past_threshold_replans(self):
        cache = KernelCache(adaptive=True)
        rule = self._rule()
        sizes = {"tc": 100, "edge": 100}
        first = cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        sizes["tc"] = 399  # < 4x: no replan
        assert cache.kernel(rule, None,
                            lambda a, i: sizes[a.pred]) is first
        sizes["tc"] = 401  # > 4x: stale plan
        second = cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        assert second is not first
        assert cache.replans == 1

    def test_shrink_also_counts_as_drift(self):
        cache = KernelCache(adaptive=True)
        rule = self._rule()
        sizes = {"tc": 400, "edge": 400}
        first = cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        sizes["tc"] = 50
        assert cache.kernel(rule, None,
                            lambda a, i: sizes[a.pred]) is not first
        assert cache.replans == 1

    def test_tiny_relations_never_trigger(self):
        # Both-below-floor churn (0 -> 15 rows) is noise, not drift.
        cache = KernelCache(adaptive=True, replan_floor=16)
        rule = self._rule()
        sizes = {"tc": 1, "edge": 8}
        cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        sizes["tc"] = 15
        cache.kernel(rule, None, lambda a, i: sizes[a.pred])
        assert cache.replans == 0

    def test_monotone_growth_replans_log_times(self):
        cache = KernelCache(adaptive=True)
        rule = self._rule()
        current = {"n": 16}
        sizes = lambda a, i: current["n"]  # noqa: E731
        for n in range(16, 100_000, 500):
            current["n"] = n
            cache.kernel(rule, None, sizes)
        # 16 -> 100k is ~12.6x = ~1.8 quadruplings; the snapshot resets
        # on every replan, so the count is logarithmic, not linear.
        assert cache.replans <= 4

    def test_max_replans_caps_oscillation(self):
        cache = KernelCache(adaptive=True, max_replans=3)
        rule = self._rule()
        current = {"n": 16}
        sizes = lambda a, i: current["n"]  # noqa: E731
        for step in range(50):
            current["n"] = 16 if step % 2 else 100_000
            cache.kernel(rule, None, sizes)
        assert cache.replans == 3

    def test_non_adaptive_cache_never_replans(self):
        cache = KernelCache(adaptive=False)
        rule = self._rule()
        current = {"n": 1}
        sizes = lambda a, i: current["n"]  # noqa: E731
        first = cache.kernel(rule, None, sizes)
        current["n"] = 10**6
        assert cache.kernel(rule, None, sizes) is first

    def test_replans_surface_in_eval_stats(self):
        result = evaluate(parse_program(TC), chain_db(40),
                          planner="adaptive")
        assert result.stats.replans >= 1
        assert "replans" in result.stats.as_dict()


class TestAdaptiveCostModel:
    def test_cost_orders_by_selectivity(self):
        # fat(X), thin(X, Y): greedy (size-based) would scan thin (3
        # rows) first; the adaptive cost model knows probing fat on a
        # bound column yields ~1 row and keeps whichever anchor
        # minimizes estimated rows — observable via plan estimates.
        program = parse_program(
            "q0: out(X, Y) :- fat(X), thin(X, Y).")
        db = Database()
        db.ensure("fat", 1)
        db.ensure("thin", 2)
        for i in range(50):
            db.add_fact("fat", f"v{i}")
        for i in range(3):
            db.add_fact("thin", f"v{i}", f"w{i}")
        text = explain_plan(program, db, planner="adaptive")
        assert "est" in text
        result = evaluate(program, db, planner="adaptive")
        assert len(result.facts("out")) == 3

    def test_explain_plan_stats_section(self):
        text = explain_plan(parse_program(TC), chain_db(5),
                            planner="adaptive", show_stats=True)
        assert "statistics" in text.lower()
        assert "edge/2" in text
        assert "distinct" in text

    def test_explain_kernels_marks_interned_and_fused(self):
        db = chain_db(5).interned()
        text = explain_kernels(parse_program(TC), db,
                               planner="adaptive")
        assert "interned" in text
        assert "fuse" in text


class TestBodyFusion:
    def _kernel(self, rule_text, db, **kwargs):
        program = parse_program(rule_text)
        rule = program.rules[-1]

        def sizes(atom, index):
            return len(db.relation_or_empty(atom.pred, atom.arity))

        return compile_rule(rule, sizes, symbols=db.symbols, **kwargs)

    def test_pure_atom_body_deep_fuses(self):
        db = chain_db(5).interned()
        kernel = self._kernel(TC, db)
        assert kernel.deep_fused
        assert "fuse" in kernel.describe()

    def test_comparison_blocks_deep_fusion(self):
        db = chain_db(5).interned()
        kernel = self._kernel(
            "q0: q(X, Y) :- edge(X, Y), X < Y.", db)
        assert not kernel.deep_fused

    def test_raw_mode_never_fuses(self):
        kernel = self._kernel(TC, chain_db(5))
        assert not kernel.deep_fused and not kernel.fused

    def test_fused_and_generic_paths_agree(self):
        # Same program, same database: interned (fused) and raw
        # (closure-chain) kernels must produce identical facts and
        # identical work counters.
        program = parse_program(TC)
        db = chain_db(25)
        raw = evaluate(program, db, interning="off")
        fused = evaluate(program, db, interning="on")
        assert raw.facts("tc") == fused.facts("tc")
        for field in ("derivations", "duplicate_derivations",
                      "rows_matched", "atom_lookups", "iterations"):
            assert getattr(raw.stats, field) \
                == getattr(fused.stats, field), field

    def test_repeated_variable_in_atom_fuses_with_filter(self):
        program = parse_program("q0: loop(X) :- edge(X, X).")
        db = Database({"edge": [("a", "a"), ("a", "b"), ("c", "c")]})
        raw = evaluate(program, db, interning="off")
        fused = evaluate(program, db, interning="on")
        assert raw.facts("loop") == fused.facts("loop") \
            == frozenset({("a",), ("c",)})
        assert raw.stats.rows_matched == fused.stats.rows_matched

    def test_constant_in_head_and_body(self):
        program = parse_program('q0: tagged("t", Y) :- edge("a", Y).')
        db = Database({"edge": [("a", "b"), ("c", "d")]})
        for interning in ("off", "on"):
            result = evaluate(program, db, interning=interning)
            assert result.facts("tagged") == frozenset({("t", "b")})

    def test_hooks_disable_the_fused_path(self):
        # A derivation hook needs value-domain bindings per solution;
        # the kernel must fall back to the generic entry and still
        # decode codes before the hook sees them.
        from repro.engine.seminaive import seminaive_evaluate
        program = parse_program(TC)
        seen = []

        def hook(rule, binding, round_index):
            seen.append(dict(binding))
            return True

        idb = seminaive_evaluate(program, chain_db(3).interned(),
                                 hook=hook)
        assert len(idb.relation("tc")) == 6
        assert all(isinstance(v, str) and v.startswith("n")
                   for b in seen for v in b.values())


class TestSymbolSharingGuards:
    def test_kernel_emits_codes_only_for_its_own_table(self):
        # A kernel compiled against one symbol table must intern its
        # program constants in that table, not re-use raw values.
        symbols = SymbolTable()
        db = Database({"edge": [("a", "b")]}).interned(symbols)
        program = parse_program('q0: q("z", Y) :- edge(X, Y).')
        result = evaluate(program, db, interning="on")
        assert result.facts("q") == frozenset({("z", "b")})
        assert symbols.code("z") is not None
