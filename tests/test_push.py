"""Tests for the push transformations (Section 4) on the automaton form."""

import pytest

from repro.core import (apply_elimination, apply_introduction,
                        apply_pruning, check_equivalent,
                        generate_residues, isolate, remove_dead_rules,
                        rule_level_residues)
from repro.core.equivalence import (make_consistent, random_database)
from repro.constraints import ic_from_text
from repro.datalog import parse_program


def _find(items, sequence=None, strict=None):
    for item in items:
        if sequence is not None and item.sequence != sequence:
            continue
        if strict is not None and item.strictly_useful != strict:
            continue
        return item
    raise AssertionError(f"no residue for {sequence}")


class TestElimination:
    def test_example_3_2_unconditional(self, ex32, rng):
        items = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        item = _find(items, sequence=("r1", "r1"))
        isolation = isolate(ex32.program, "eval", item.sequence)
        outcome = apply_elimination(isolation, item, [ex32.ic("ic1")])
        assert outcome.applied, outcome.reason
        # The edited alpha-rule lost its expert atom.
        edited = [r for r in outcome.program
                  if r.label == "eval__alpha1_e"]
        assert edited and "expert" not in edited[0].body_predicates()
        dbs = []
        for _ in range(5):
            db = random_database(
                {"super": 3, "works_with": 2, "expert": 2, "field": 2},
                6, 10, rng)
            make_consistent(db, [ex32.ic("ic1")])
            dbs.append(db)
        assert check_equivalent(ex32.program, outcome.program, "eval",
                                dbs) is None

    def test_example_4_1_threaded_conditional(self, ex41, rng):
        items = generate_residues(ex41.program, "triple", ex41.ic("ic1"))
        item = _find(items, sequence=("r2", "r2", "r2", "r2"))
        isolation = isolate(ex41.program, "triple", item.sequence)
        outcome = apply_elimination(isolation, item, [ex41.ic("ic1")])
        assert outcome.applied, outcome.reason
        # The threading duplicated chain predicates with the _e suffix.
        preds = outcome.program.idb_predicates
        assert {"triple__p1_e", "triple__p2_e", "triple__p3_e"} <= preds
        dbs = []
        for _ in range(5):
            db = random_database(
                {"same_level": 3, "boss": 3, "experienced": 1}, 5, 12,
                rng)
            rows = [(a, b, rng.choice(["executive", "staff"]))
                    for a, b, _ in db.facts("boss")]
            rel = db.relation("boss")
            rel.clear()
            rel.add_all(rows)
            make_consistent(db, [ex41.ic("ic1")])
            dbs.append(db)
        assert check_equivalent(ex41.program, outcome.program, "triple",
                                dbs) is None

    def test_guard_rejects_loose_rule_level_residue(self, ex41):
        items = generate_residues(ex41.program, "triple", ex41.ic("ic1"))
        loose = _find(items, sequence=("r2",))
        isolation = isolate(ex41.program, "triple", ("r2",))
        outcome = apply_elimination(isolation, loose, [ex41.ic("ic1")])
        assert not outcome.applied
        assert "chase guard" in outcome.reason

    def test_paper_mode_skips_guard(self, ex41):
        """guard="none" reproduces the paper verbatim — including its
        unsound corner, which is exactly why the guard exists."""
        items = generate_residues(ex41.program, "triple", ex41.ic("ic1"))
        loose = _find(items, sequence=("r2",))
        isolation = isolate(ex41.program, "triple", ("r2",))
        outcome = apply_elimination(isolation, loose, [ex41.ic("ic1")],
                                    guard="none")
        assert outcome.applied

    def test_null_residue_rejected(self, ex43):
        items = generate_residues(ex43.program, "anc", ex43.ic("ic1"))
        item = _find(items, sequence=("r1", "r1", "r1"))
        isolation = isolate(ex43.program, "anc", item.sequence)
        outcome = apply_elimination(isolation, item, [ex43.ic("ic1")])
        assert not outcome.applied


class TestIntroduction:
    def test_example_4_2(self, ex32, rng):
        items = rule_level_residues(ex32.program, ex32.ic("ic2"),
                                    useful_only=False)
        item = _find(items, sequence=("r2",))
        isolation = isolate(ex32.program, "eval_support", ("r2",))
        outcome = apply_introduction(isolation, item, [ex32.ic("ic2")])
        assert outcome.applied, outcome.reason
        labels = {r.label for r in outcome.program}
        assert "r2_i" in labels and "r2_n" in labels
        introduced = outcome.program.rule("r2_i")
        assert "doctoral" in introduced.body_predicates()
        # The reducer is prepended (the paper's post-push reordering).
        assert introduced.body[0].pred == "doctoral"
        dbs = []
        for _ in range(5):
            db = random_database(
                {"super": 3, "works_with": 2, "expert": 2, "field": 2,
                 "pays": 4, "doctoral": 1}, 5, 10, rng,
                numeric_columns={"pays": [0]}, max_value=20000)
            make_consistent(db, [ex32.ic("ic2")])
            dbs.append(db)
        assert check_equivalent(ex32.program, outcome.program,
                                "eval_support", dbs) is None

    def test_null_residue_rejected(self, ex43):
        items = generate_residues(ex43.program, "anc", ex43.ic("ic1"))
        item = _find(items, sequence=("r1", "r1", "r1"))
        isolation = isolate(ex43.program, "anc", item.sequence)
        outcome = apply_introduction(isolation, item, [ex43.ic("ic1")])
        assert not outcome.applied


class TestPruning:
    def test_example_4_3_conditional(self, ex43, rng):
        items = generate_residues(ex43.program, "anc", ex43.ic("ic1"))
        item = _find(items, sequence=("r1", "r1", "r1"))
        isolation = isolate(ex43.program, "anc", item.sequence)
        outcome = apply_pruning(isolation, item, [ex43.ic("ic1")])
        assert outcome.applied, outcome.reason
        guard = outcome.program.rule("anc__alpha1_n")
        assert any(str(lit) == "Ya > 50" for lit in guard.body)
        dbs = []
        for _ in range(5):
            db = random_database({"par": 4}, 6, 14, rng,
                                 numeric_columns={"par": [1, 3]})
            make_consistent(db, [ex43.ic("ic1")])
            dbs.append(db)
        assert check_equivalent(ex43.program, outcome.program, "anc",
                                dbs) is None

    def test_unconditional_prunes_rule_away(self, rng):
        program = parse_program("""
            r0: reach(X, Y) :- edge(X, Y).
            r1: reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """)
        # No paths of length three exist at all.
        ic = ic_from_text(
            "edge(A, B), edge(B, C), edge(C, D) -> .")
        items = generate_residues(program, "reach", ic)
        item = _find(items, sequence=("r1", "r1", "r0"))
        isolation = isolate(program, "reach", item.sequence)
        outcome = apply_pruning(isolation, item, [ic])
        assert outcome.applied, outcome.reason
        # The pattern-completing rule (and its dead callers) are gone.
        assert len(outcome.program) < len(isolation.program)
        dbs = []
        for _ in range(5):
            db = random_database({"edge": 2}, 8, 10, rng)
            make_consistent(db, [ic])
            dbs.append(db)
        assert check_equivalent(program, outcome.program, "reach",
                                dbs) is None

    def test_fact_residue_rejected(self, ex32):
        items = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        item = _find(items, sequence=("r1", "r1"))
        isolation = isolate(ex32.program, "eval", item.sequence)
        outcome = apply_pruning(isolation, item, [ex32.ic("ic1")])
        assert not outcome.applied


class TestRemoveDeadRules:
    def test_removes_callers_of_empty_idb(self):
        program = parse_program("""
            r0: p(X) :- e(X).
            r1: p(X) :- aux(X).
            r2: aux2(X) :- aux(X), e(X).
        """, edb_hint=("e",))
        cleaned = remove_dead_rules(program, edb=frozenset({"e"}))
        assert {r.label for r in cleaned} == {"r0"}

    def test_keeps_complete_programs(self, ex43):
        assert remove_dead_rules(ex43.program) == ex43.program
