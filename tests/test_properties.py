"""Property-based tests (hypothesis) for the core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines import ResidueGuidedEngine
from repro.core import SemanticOptimizer, isolate
from repro.datalog import parse_program, parse_rule
from repro.datalog.atoms import Atom, Comparison, atom, comparison
from repro.datalog.rules import is_connected
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import Substitution, match, unify
from repro.engine import builtins, evaluate, magic_answers, query_answers
from repro.facts import Database, Relation
from repro.workloads import example_4_3

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=6).map(lambda i: f"n{i}")
edges = st.lists(st.tuples(nodes, nodes), min_size=0, max_size=18)

var_names = st.sampled_from(["X", "Y", "Z", "W"])
terms = st.one_of(
    var_names.map(Variable),
    st.integers(min_value=-5, max_value=5).map(Constant),
    st.sampled_from(["a", "b", "c"]).map(Constant))
atoms_st = st.builds(
    lambda pred, args: Atom(pred, tuple(args)),
    st.sampled_from(["p", "q", "r"]),
    st.lists(terms, min_size=0, max_size=3))
comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
int_pairs = st.tuples(st.integers(-50, 50), st.integers(-50, 50))


def _edge_db(pairs) -> Database:
    db = Database()
    db.ensure("edge", 2)
    for a, b in pairs:
        db.add_fact("edge", a, b)
    return db


# ---------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(edges)
def test_naive_equals_seminaive(pairs):
    program = parse_program("""
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """)
    db = _edge_db(pairs)
    assert evaluate(program, db, method="naive").facts("reach") == \
        evaluate(program, db, method="seminaive").facts("reach")


@settings(max_examples=40, deadline=None)
@given(edges)
def test_planners_agree(pairs):
    program = parse_program("""
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """)
    db = _edge_db(pairs)
    assert evaluate(program, db, planner="greedy").facts("reach") == \
        evaluate(program, db, planner="source").facts("reach")


@settings(max_examples=30, deadline=None)
@given(edges, nodes)
def test_magic_sets_match_plain(pairs, start):
    program = parse_program("""
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """)
    db = _edge_db(pairs)
    query = atom("reach", start, "Y")
    assert magic_answers(program, db, query) == \
        query_answers(program, db, query)


# ---------------------------------------------------------------------------
# Datalog-substrate invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(comparison_ops, int_pairs)
def test_comparison_complement_is_negation(op, values):
    left, right = values
    c = comparison("X", op, "Y")
    binding = {Variable("X"): left, Variable("Y"): right}
    assert builtins.holds(c, binding) != \
        builtins.holds(c.complement(), binding)


@settings(max_examples=60, deadline=None)
@given(comparison_ops, int_pairs)
def test_comparison_converse_is_equivalent(op, values):
    left, right = values
    c = comparison("X", op, "Y")
    binding = {Variable("X"): left, Variable("Y"): right}
    assert builtins.holds(c, binding) == \
        builtins.holds(c.converse(), binding)


@settings(max_examples=60, deadline=None)
@given(atoms_st, atoms_st)
def test_unify_produces_unifier(a, b):
    unifier = unify(a, b)
    if unifier is not None:
        assert unifier.apply(a) == unifier.apply(b)


@settings(max_examples=60, deadline=None)
@given(atoms_st, atoms_st)
def test_match_maps_pattern_onto_target(a, b):
    theta = match(a, b)
    if theta is not None:
        assert theta.apply(a) == b


@settings(max_examples=60, deadline=None)
@given(st.lists(atoms_st, min_size=0, max_size=5), st.randoms())
def test_connectivity_is_order_invariant(literals, rnd):
    shuffled = list(literals)
    rnd.shuffle(shuffled)
    assert is_connected(tuple(literals)) == is_connected(tuple(shuffled))


@settings(max_examples=60, deadline=None)
@given(atoms_st)
def test_rule_text_roundtrip(head_atom):
    if not head_atom.variable_set():
        rule = parse_rule(f"{head_atom}.")
        assert rule.head == head_atom
    else:
        body = ", ".join(
            f"b{i}({v})" for i, v in enumerate(
                sorted(head_atom.variable_set(), key=lambda v: v.name)))
        rule = parse_rule(f"{head_atom} :- {body}.")
        assert rule.head == head_atom


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                min_size=0, max_size=25),
       st.integers(0, 4))
def test_relation_lookup_equals_scan(rows, key):
    relation = Relation("r", 2, rows)
    expected = {row for row in relation if row[0] == key}
    assert set(relation.lookup(((0, key),))) == expected


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(var_names.map(Variable), terms, max_size=3),
       st.dictionaries(var_names.map(Variable), terms, max_size=3),
       atoms_st)
def test_substitution_compose_is_sequential_application(first, second,
                                                        target):
    s1, s2 = Substitution(first), Substitution(second)
    composed = s1.compose(s2)
    assert composed.apply(target) == s2.apply(s1.apply(target))


# ---------------------------------------------------------------------------
# Theorem 4.1 and the optimizer, on random data
# ---------------------------------------------------------------------------

_par_rows = st.lists(
    st.tuples(st.integers(0, 7), st.integers(1, 95),
              st.integers(0, 7), st.integers(1, 95)),
    min_size=0, max_size=20)


def _genealogy_db(rows) -> Database:
    db = Database()
    db.ensure("par", 4)
    ages: dict[str, int] = {}
    for child, child_age, parent, parent_age in rows:
        if child == parent:
            continue
        # Make ages functional per person so the data is sensible.
        c_age = ages.setdefault(f"g{child}", child_age)
        p_age = ages.setdefault(f"g{parent}", parent_age)
        db.add_fact("par", f"g{child}", c_age, f"g{parent}", p_age)
    return db


@settings(max_examples=25, deadline=None)
@given(_par_rows, st.sampled_from([("r1", "r1"), ("r1", "r1", "r1"),
                                   ("r1", "r0"), ("r1", "r1", "r0")]))
def test_theorem_4_1_isolation_equivalence(rows, sequence):
    example = example_4_3()
    isolation = isolate(example.program, "anc", sequence)
    db = _genealogy_db(rows)
    assert evaluate(example.program, db).facts("anc") == \
        evaluate(isolation.program, db).facts("anc")


@settings(max_examples=20, deadline=None)
@given(_par_rows)
def test_optimizer_preserves_answers_on_consistent_data(rows):
    from repro.core.equivalence import make_consistent

    example = example_4_3()
    ic = example.ic("ic1")
    db = _genealogy_db(rows)
    make_consistent(db, [ic])
    optimized = SemanticOptimizer(
        example.program, [ic]).optimize().optimized
    assert evaluate(example.program, db).facts("anc") == \
        evaluate(optimized, db).facts("anc")


@settings(max_examples=20, deadline=None)
@given(_par_rows)
def test_guided_engine_preserves_answers_on_consistent_data(rows):
    from repro.core.equivalence import make_consistent

    example = example_4_3()
    ic = example.ic("ic1")
    db = _genealogy_db(rows)
    make_consistent(db, [ic])
    engine = ResidueGuidedEngine(example.program, [ic], pred="anc")
    assert evaluate(example.program, db).facts("anc") == \
        engine.evaluate(db).facts("anc")


# ---------------------------------------------------------------------------
# Minimization and the chase guard, on random data
# ---------------------------------------------------------------------------

_vip_rows = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                     min_size=0, max_size=14)


@settings(max_examples=20, deadline=None)
@given(_vip_rows, st.lists(st.integers(0, 5), max_size=6))
def test_minimize_preserves_answers_under_ics(boss_rows, vips):
    from repro.constraints import ic_from_text
    from repro.core import minimize_program
    from repro.core.equivalence import make_consistent

    program = parse_program(
        "q(E, B) :- boss(E, B), experienced(B), vip(B).")
    ic = ic_from_text("vip(B) -> experienced(B).")
    report = minimize_program(program, [ic])
    assert report.changed  # experienced is implied by vip

    db = Database()
    db.ensure("boss", 2)
    db.ensure("experienced", 1)
    db.ensure("vip", 1)
    for a, b in boss_rows:
        db.add_fact("boss", f"e{a}", f"e{b}")
    for v in vips:
        db.add_fact("vip", f"e{v}")
    make_consistent(db, [ic])
    assert evaluate(program, db).facts("q") == \
        evaluate(report.minimized, db).facts("q")


@settings(max_examples=15, deadline=None)
@given(_par_rows)
def test_chase_guard_elimination_is_actually_sound(rows):
    """Whatever the guard admits must preserve answers on consistent
    databases — checked for the Example 3.2 elimination."""
    from repro.core.equivalence import make_consistent
    from repro.workloads import example_3_2

    example = example_3_2()
    ic = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic], pred="eval").optimize().optimized

    # Reinterpret the generated tuples as university facts.
    db = Database()
    for pred in ("super", "works_with", "expert", "field"):
        db.ensure(pred, 3 if pred == "super" else 2)
    for child, child_age, parent, parent_age in rows:
        db.add_fact("works_with", f"p{child}", f"p{parent}")
        db.add_fact("expert", f"p{child}", f"f{child_age % 4}")
        db.add_fact("field", f"t{parent}", f"f{parent_age % 4}")
        db.add_fact("super", f"p{child}", f"s{child_age % 3}",
                    f"t{parent}")
    make_consistent(db, [ic])
    assert evaluate(example.program, db).facts("eval") == \
        evaluate(optimized, db).facts("eval")
