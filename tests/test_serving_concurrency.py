"""The acceptance workload: concurrent readers under a faulty writer.

Four reader threads answer a recursive query from MVCC snapshots while
one writer client streams edge changesets through the pipeline and the
chaos harness fails ``serving:apply`` and ``serving:refresh`` entries
mid-run.  The suite asserts the serving tier's whole contract at once:

* no unhandled exception ever escapes a reader or the writer — every
  failure a client sees is a typed ``ServingUnavailable``;
* every read is served from a consistent snapshot: its answer set
  equals a from-scratch semi-naive evaluation of the database *at the
  snapshot's version* (reconstructed via ``state_at``), even for reads
  served mid-fault from the last-good snapshot;
* after the faults exhaust, the pipeline drains and heals: a
  ``max_lag=0`` read returns the current version and the final
  materialization fingerprints identically to a full recomputation.

Runs are time-boxed to fractions of a second; CI additionally wraps
the suite in pytest-timeout so a deadlock fails fast instead of
hanging the job.
"""

import random
import threading
import time

from repro.datalog import parse_program
from repro.engine.bindings import EvalStats
from repro.engine.seminaive import answers, seminaive_evaluate
from repro.errors import ServingUnavailable
from repro.facts import Database
from repro.facts.changelog import Changeset
from repro.runtime.chaos import ChaosPlan
from repro.runtime.retry import CircuitBreaker, RetryPolicy
from repro.serving import (StalenessBound, ThreadedServer,
                           relation_fingerprint)
from repro.serving.views import program_fingerprint  # noqa: F401 - api

TC = """
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
"""

QUERY = "reach(n0, X)"

READERS = 4
RUN_S = 0.6


def _random_db(seed=7, nodes=24, edges=70):
    rng = random.Random(seed)
    db = Database()
    db.ensure("edge", 2)
    while db.total_facts() < edges:
        src, dst = rng.randrange(nodes), rng.randrange(nodes)
        if src != dst:
            db.add_fact("edge", f"n{src}", f"n{dst}")
    return db


def _server(db):
    return ThreadedServer(
        db=db, max_readers=READERS + 2,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.005,
                          max_delay_s=0.02, jitter=0.0),
        breaker=CircuitBreaker(failure_threshold=10, cooldown_s=0.1),
        rebuild_after=2, poll_s=0.005)


def _expected_rows(server, program, version):
    """The query's answer from a from-scratch evaluation at ``version``."""
    from repro.datalog.parser import parse_query

    historical = server.server.source.state_at(version)
    idb = seminaive_evaluate(program, historical)
    return answers(parse_query(QUERY).literals, program, historical,
                   idb, EvalStats())


def test_mixed_workload_with_chaos_faults_stays_consistent():
    program = parse_program(TC)
    server = _server(_random_db())
    server.view(program)

    stop = threading.Event()
    lock = threading.Lock()
    observed = {}          # version -> one answer set served at it
    unhandled = []
    shed = {"reads": 0, "writes": 0}

    def reader_loop(index):
        bound = StalenessBound(max_lag=3) if index % 2 else None
        while not stop.is_set():
            try:
                result = server.read(program, QUERY, deadline_s=2.0,
                                     staleness=bound)
            except ServingUnavailable:
                with lock:
                    shed["reads"] += 1
                continue
            except Exception as error:  # noqa: BLE001 - the assertion
                with lock:
                    unhandled.append(
                        f"reader: {type(error).__name__}: {error}")
                return
            with lock:
                previous = observed.setdefault(
                    result.version, frozenset(result.rows))
                # Reads at one version must all see one answer set.
                if previous != frozenset(result.rows):
                    unhandled.append(
                        f"reader: divergent answers at "
                        f"v{result.version}")
                    return

    def writer_loop():
        rng = random.Random(99)
        while not stop.is_set():
            src = f"n{rng.randrange(24)}"
            dst = f"n{rng.randrange(24, 30)}"
            sign = "+" if rng.random() < 0.7 else "-"
            try:
                server.update(
                    Changeset.from_text(f"{sign}edge({src}, {dst})."),
                    timeout_s=0.05)
            except ServingUnavailable:
                with lock:
                    shed["writes"] += 1
            except Exception as error:  # noqa: BLE001 - the assertion
                with lock:
                    unhandled.append(
                        f"writer: {type(error).__name__}: {error}")
                return
            stop.wait(0.002)

    plan = ChaosPlan()
    plan.fail_stage("serving:apply", repeats=1)
    plan.fail_stage("serving:refresh", repeats=2)

    with server:
        server.read(program, QUERY)  # publish the first snapshot
        threads = [threading.Thread(target=reader_loop, args=(i,),
                                    daemon=True)
                   for i in range(READERS)]
        threads.append(threading.Thread(target=writer_loop, daemon=True))
        with plan.active():
            for thread in threads:
                thread.start()
            stop.wait(RUN_S)
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            assert server.flush(timeout_s=10.0), \
                server.pipeline.describe()

        # No thread died, faults really fired, and reads were served
        # right through the outage.
        assert unhandled == []
        assert plan.triggered, "chaos faults never fired"
        assert observed, "no read completed"

        # Every served version is consistent with a from-scratch
        # evaluation of the database *at that version*.
        for version, rows in sorted(observed.items()):
            assert rows == frozenset(_expected_rows(
                server, program, version)), \
                f"answers served at v{version} diverge from " \
                f"a from-scratch evaluation at v{version}"

        # Healed: a current-version read succeeds and the final
        # materialization equals a full recomputation.
        final = server.read(program, QUERY,
                            staleness=StalenessBound(max_lag=0))
        assert final.version == server.version
        assert final.lag == 0
        view = server.view(program)
        expected = seminaive_evaluate(program,
                                      server.server.source.db)
        assert (relation_fingerprint(view.idb)
                == relation_fingerprint(expected))


def test_readers_keep_last_good_snapshot_through_writer_outage():
    program = parse_program(TC)
    server = _server(_random_db(seed=11))

    plan = ChaosPlan()
    plan.fail_stage("serving:refresh")      # incremental always fails
    plan.fail_stage("serving:materialize")  # ... and rebuilds too

    with server:
        warm = server.read(program, QUERY)
        assert warm.version == 0
        with plan.active():
            server.update(Changeset.from_text("+edge(n0, n99)."),
                          timeout_s=0.5)
            # Wait for the writer to land the apply (refreshes keep
            # failing, but ingestion itself is not faulted): only then
            # is the view genuinely stale.
            for _ in range(1000):
                if server.version >= 1:
                    break
                time.sleep(0.005)
            assert server.version >= 1
            deadline_failures = 0
            for _ in range(20):
                # Availability over freshness: the default bound keeps
                # answering from the last-good (v0) snapshot while
                # every refresh attempt behind the scenes fails.
                result = server.read(program, QUERY, deadline_s=0.5)
                assert result.version == 0
                assert frozenset(result.rows) == frozenset(warm.rows)
                # ... while a current-version demand fails *typed*.
                try:
                    server.read(program, QUERY, deadline_s=0.05,
                                staleness=StalenessBound(max_lag=0))
                except ServingUnavailable as error:
                    assert error.reason in ("deadline", "no-snapshot")
                    deadline_failures += 1
            assert deadline_failures == 20
        # Faults lifted: the pipeline heals and freshness returns.
        assert server.flush(timeout_s=10.0)
        healed = server.read(program, QUERY,
                             staleness=StalenessBound(max_lag=0))
        assert healed.version == server.version >= 1
        assert ("n99",) in healed.rows


def test_flush_is_a_barrier_across_concurrent_submitters():
    program = parse_program(TC)
    server = _server(_random_db(seed=23))
    submitters, per_thread = 3, 15

    def submit_loop(index):
        for i in range(per_thread):
            server.update(Changeset.from_text(
                f"+edge(w{index}_{i}, sink)."), timeout_s=1.0)

    with server:
        server.read(program, QUERY)
        threads = [threading.Thread(target=submit_loop, args=(i,),
                                    daemon=True)
                   for i in range(submitters)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert server.flush(timeout_s=10.0), server.pipeline.describe()
        assert server.pipeline.drained()
        # Inserts commute, so the final EDB is exact regardless of the
        # interleaving; every accepted write must have landed.
        edges = server.server.source.db.facts("edge")
        for index in range(submitters):
            for i in range(per_thread):
                assert (f"w{index}_{i}", "sink") in edges
        view = server.view(program)
        if not view.valid:
            view.refresh()
        expected = seminaive_evaluate(program, server.server.source.db)
        assert (relation_fingerprint(view.idb)
                == relation_fingerprint(expected))
