"""Unit tests for substitutions, unification and matching."""

import pytest

from repro.datalog.atoms import atom, comparison
from repro.datalog.terms import (ArithExpr, Constant, FreshVariableSupply,
                                 Variable)
from repro.datalog.unify import (EMPTY_SUBSTITUTION, Substitution, match,
                                 match_terms, rename_apart, unify)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestSubstitution:
    def test_apply_to_atom(self):
        subst = Substitution({X: Constant("a")})
        assert subst.apply(atom("p", "X", "Y")) == atom("p", "a", "Y")

    def test_apply_to_comparison(self):
        subst = Substitution({X: Constant(3)})
        applied = subst.apply_literal(comparison("X", "<", "Y"))
        assert applied == comparison(3, "<", "Y")

    def test_apply_inside_arithmetic(self):
        subst = Substitution({X: Constant(2)})
        expr = ArithExpr("+", X, Y)
        assert subst.apply_term(expr) == ArithExpr("+", Constant(2), Y)

    def test_bind_is_persistent_copy(self):
        base = Substitution()
        extended = base.bind(X, Constant(1))
        assert X in extended and X not in base

    def test_compose_order(self):
        first = Substitution({X: Y})
        second = Substitution({Y: Constant("a")})
        composed = first.compose(second)
        assert composed.apply_term(X) == Constant("a")
        assert composed.apply_term(Y) == Constant("a")

    def test_restrict(self):
        subst = Substitution({X: Constant(1), Y: Constant(2)})
        assert set(subst.restrict([X])) == {X}

    def test_equality_and_hash(self):
        a = Substitution({X: Constant(1)})
        b = Substitution({X: Constant(1)})
        assert a == b and hash(a) == hash(b)


class TestUnify:
    def test_simple(self):
        unifier = unify(atom("p", "X", "b"), atom("p", "a", "Y"))
        assert unifier is not None
        assert unifier.apply(atom("p", "X", "b")) == atom("p", "a", "b")

    def test_different_predicates(self):
        assert unify(atom("p", "X"), atom("q", "X")) is None

    def test_different_arities(self):
        assert unify(atom("p", "X"), atom("p", "X", "Y")) is None

    def test_clash(self):
        assert unify(atom("p", "a"), atom("p", "b")) is None

    def test_repeated_variables(self):
        unifier = unify(atom("p", "X", "X"), atom("p", "Y", "a"))
        assert unifier is not None
        assert unifier.apply_term(Y) == Constant("a")

    def test_occurs_check(self):
        left = atom("p", "X")
        from repro.datalog.atoms import Atom
        right = Atom("p", (ArithExpr("+", X, Constant(1)),))
        assert unify(left, right) is None

    def test_mgu_application_makes_equal(self):
        a = atom("p", "X", "Y", "c")
        b = atom("p", "b", "Z", "Z")
        unifier = unify(a, b)
        assert unifier is not None
        assert unifier.apply(a) == unifier.apply(b)


class TestMatch:
    def test_pattern_variable_binds(self):
        theta = match(atom("p", "X"), atom("p", "a"))
        assert theta is not None and theta[X] == Constant("a")

    def test_target_variable_is_rigid(self):
        # One-way: the pattern constant cannot absorb a target variable.
        assert match(atom("p", "a"), atom("p", "X")) is None

    def test_pattern_variable_can_bind_target_variable(self):
        theta = match(atom("p", "X"), atom("p", "Y"))
        assert theta is not None and theta[X] == Y

    def test_consistency_across_positions(self):
        assert match(atom("p", "X", "X"), atom("p", "a", "b")) is None
        theta = match(atom("p", "X", "X"), atom("p", "a", "a"))
        assert theta is not None

    def test_extends_existing_substitution(self):
        seed = Substitution({X: Constant("a")})
        assert match(atom("p", "X"), atom("p", "b"), seed) is None
        theta = match(atom("p", "X"), atom("p", "a"), seed)
        assert theta == seed

    def test_match_terms_arith(self):
        pattern = ArithExpr("+", X, Constant(1))
        target = ArithExpr("+", Constant(5), Constant(1))
        theta = match_terms(pattern, target, EMPTY_SUBSTITUTION)
        assert theta is not None and theta[X] == Constant(5)

    def test_match_terms_arith_op_mismatch(self):
        pattern = ArithExpr("+", X, Constant(1))
        target = ArithExpr("-", Constant(5), Constant(1))
        assert match_terms(pattern, target, EMPTY_SUBSTITUTION) is None


class TestRenameApart:
    def test_fresh_names(self):
        supply = FreshVariableSupply({"X", "Y"})
        literals = (atom("p", "X", "Y"), comparison("X", "<", "Y"))
        renamed, renaming = rename_apart(literals, supply)
        new_vars = {v for lit in renamed for v in lit.variables()}
        assert not new_vars & {X, Y}

    def test_sharing_preserved(self):
        supply = FreshVariableSupply()
        literals = (atom("p", "X"), atom("q", "X"))
        renamed, _ = rename_apart(literals, supply)
        assert renamed[0].args == renamed[1].args
