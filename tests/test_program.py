"""Unit tests for repro.datalog.program."""

import pytest

from repro.datalog import parse_program
from repro.datalog.atoms import atom
from repro.datalog.program import Program
from repro.datalog.rules import rule
from repro.errors import ProgramError


class TestConstruction:
    def test_auto_labels(self):
        program = Program([rule(atom("p", "X"), atom("e", "X")),
                           rule(atom("p", "X"), atom("f", "X"))])
        assert [r.label for r in program] == ["r0", "r1"]

    def test_auto_labels_avoid_existing(self):
        program = Program([rule(atom("p", "X"), atom("e", "X"),
                                label="r0"),
                           rule(atom("p", "X"), atom("f", "X"))])
        labels = [r.label for r in program]
        assert labels[0] == "r0" and labels[1] != "r0"

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ProgramError):
            Program([rule(atom("p", "X"), atom("e", "X"), label="r"),
                     rule(atom("q", "X"), atom("e", "X"), label="r")])

    def test_rule_lookup(self, tc_program):
        assert tc_program.rule("r1").head.pred == "reach"
        with pytest.raises(ProgramError):
            tc_program.rule("nope")

    def test_non_rule_rejected(self):
        with pytest.raises(TypeError):
            Program(["p(X) :- q(X)."])


class TestPredicateSplit:
    def test_idb_edb(self, tc_program):
        assert tc_program.idb_predicates == {"reach"}
        assert tc_program.edb_predicates == {"edge"}

    def test_edb_hint_adds_unreferenced(self):
        program = parse_program("p(X) :- e(X).", edb_hint=("extra",))
        assert "extra" in program.edb_predicates

    def test_is_edb(self, tc_program):
        assert tc_program.is_edb("edge")
        assert not tc_program.is_edb("reach")

    def test_rules_for(self, tc_program):
        assert len(tc_program.rules_for("reach")) == 2
        assert tc_program.rules_for("edge") == ()


class TestRecursionInfo:
    def test_linear_recursion(self, tc_program):
        info = tc_program.recursion_info()
        assert info.recursive_predicates == {"reach"}
        assert not info.has_mutual_recursion
        assert info.is_linear("reach")

    def test_nonlinear_detected(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, Z), t(Z, Y).")
        info = program.recursion_info()
        assert "t" in info.nonlinear_predicates
        assert not info.is_linear("t")

    def test_mutual_recursion_detected(self):
        program = parse_program("""
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(X).
        """)
        info = program.recursion_info()
        assert info.has_mutual_recursion
        assert frozenset({"even", "odd"}) in info.mutual_groups

    def test_require_linear_passes(self, tc_program):
        tc_program.require_linear("reach")

    def test_require_linear_rejects_nonlinear(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, Z), t(Z, Y).")
        with pytest.raises(ProgramError):
            program.require_linear("t")

    def test_non_recursive_predicate_is_fine(self):
        program = parse_program("view(X) :- base(X).")
        program.require_linear("view")
        assert program.recursion_info().recursive_predicates == frozenset()


class TestRuleSets:
    def test_exit_and_recursive_rules(self, tc_program):
        assert [r.label for r in tc_program.exit_rules("reach")] == ["r0"]
        assert [r.label for r in
                tc_program.recursive_rules("reach")] == ["r1"]


class TestTransformHelpers:
    def test_replace_rule(self, tc_program):
        replacement = rule(atom("reach", "X", "Y"),
                           atom("edge2", "X", "Y"), label="r0b")
        replaced = tc_program.replace_rule("r0", replacement)
        assert len(replaced) == 2
        assert replaced.rule("r0b").body[0].pred == "edge2"

    def test_replace_rule_with_nothing_deletes(self, tc_program):
        shrunk = tc_program.replace_rule("r1")
        assert len(shrunk) == 1

    def test_replace_unknown_label(self, tc_program):
        with pytest.raises(ProgramError):
            tc_program.replace_rule("missing")

    def test_add_rules(self, tc_program):
        grown = tc_program.add_rules(
            rule(atom("other", "X"), atom("edge", "X", "X"), label="x"))
        assert len(grown) == 3
        assert len(tc_program) == 2  # original untouched


class TestArities:
    def test_consistent(self, tc_program):
        arities = tc_program.predicate_arities()
        assert arities["reach"] == 2 and arities["edge"] == 2

    def test_inconsistent_rejected(self):
        program = parse_program("p(X) :- e(X). q(X) :- e(X, X).")
        with pytest.raises(ProgramError):
            program.predicate_arities()


class TestDependencyGraph:
    def test_edges_point_body_to_head(self, tc_program):
        graph = tc_program.dependency_graph()
        assert graph.has_edge("edge", "reach")
        assert graph.has_edge("reach", "reach")

    def test_negative_flag(self):
        program = parse_program("p(X) :- e(X), not q(X). q(X) :- f(X).")
        graph = program.dependency_graph()
        assert graph["q"]["p"]["negative"] is True
        assert graph["e"]["p"]["negative"] is False
