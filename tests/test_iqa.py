"""Tests for intelligent query answering (Section 5, Example 5.1)."""

import pytest

from repro.errors import ParseError, TransformError
from repro.iqa import (describe, parse_describe, proof_trees,
                       reachable_predicates, relevant_context)
from repro.datalog import parse_program, parse_query
from repro.datalog.atoms import atom

QUERY_TEXT = ("describe honors(Stud) where major(Stud, cs), "
              "graduated(Stud, College), topten(College), "
              "hobby(Stud, chess)")


class TestParseDescribe:
    def test_structure(self):
        query = parse_describe(QUERY_TEXT)
        assert query.target == atom("honors", "Stud")
        assert len(query.context) == 4

    def test_trailing_period_ok(self):
        assert parse_describe(QUERY_TEXT + ".").target.pred == "honors"

    def test_requires_describe(self):
        with pytest.raises(ParseError):
            parse_describe("honors(X) where major(X, cs)")

    def test_requires_where(self):
        with pytest.raises(ParseError):
            parse_describe("describe honors(X)")

    def test_str(self):
        assert str(parse_describe(QUERY_TEXT)).startswith(
            "describe honors(Stud) where")


class TestReachability:
    def test_example_5_1(self, ex51):
        reachable = reachable_predicates(ex51.program, "honors")
        assert {"transcript", "exceptional", "publication", "graduated",
                "topten", "honors"} <= reachable
        assert "major" not in reachable
        assert "hobby" not in reachable

    def test_unknown_predicate_reaches_itself(self, ex51):
        assert reachable_predicates(ex51.program, "ghost") == {"ghost"}

    def test_relevant_context_split(self, ex51):
        query = parse_describe(QUERY_TEXT)
        relevant, irrelevant = relevant_context(
            ex51.program, "honors", query.context)
        assert {lit.pred for lit in relevant} == {"graduated", "topten"}
        assert {lit.pred for lit in irrelevant} == {"major", "hobby"}

    def test_evaluable_follows_relevant_variables(self, ex51):
        context = parse_query(
            "graduated(Stud, College), topten(College), Age > 30, "
            "hobby(Stud, H)").literals
        relevant, irrelevant = relevant_context(ex51.program, "honors",
                                                context)
        # Age touches nothing relevant: irrelevant.
        assert any(str(lit) == "Age > 30" for lit in irrelevant)

    def test_evaluable_kept_when_sharing_vars(self, ex51):
        context = parse_query(
            "transcript(Stud, M, C, G), G >= 3.9").literals
        relevant, _ = relevant_context(ex51.program, "honors", context)
        assert any(str(lit) == "G >= 3.9" for lit in relevant)


class TestProofTrees:
    def test_example_5_1_has_three(self, ex51):
        trees = proof_trees(ex51.program, atom("honors", "Stud"))
        labels = {tree.labels for tree in trees}
        assert labels == {("r0",), ("r1", "r2"), ("r3",)}

    def test_leaves_are_edb_or_evaluable(self, ex51):
        for tree in proof_trees(ex51.program, atom("honors", "S")):
            for leaf in tree.leaves:
                pred = getattr(leaf, "pred", None)
                assert pred not in ex51.program.idb_predicates

    def test_recursive_predicates_truncated(self, tc_program):
        trees = proof_trees(tc_program, atom("reach", "X", "Y"),
                            max_expansions=3)
        assert 1 <= len(trees) <= 3
        assert ("r0",) in {t.labels for t in trees}

    def test_query_constant_propagates(self, ex51):
        trees = proof_trees(ex51.program, atom("honors", "sue"))
        r3 = [t for t in trees if t.labels == ("r3",)][0]
        graduated = [l for l in r3.leaves if l.pred == "graduated"][0]
        assert str(graduated.args[0]) == "sue"


class TestDescribe:
    def test_example_5_1_answer(self, ex51):
        result = describe(ex51.program, parse_describe(QUERY_TEXT))
        assert result.context_suffices
        by_labels = {d.tree.labels: d for d in result.descriptions}
        assert by_labels[("r3",)].subsumed
        assert by_labels[("r3",)].residue == ()
        assert not by_labels[("r0",)].subsumed
        assert "every object satisfying the context" in result.summary()
        assert "ignored as irrelevant" in result.summary()

    def test_insufficient_context(self, ex51):
        query = parse_describe(
            "describe honors(Stud) where "
            "transcript(Stud, M, C, G), G >= 3.8")
        result = describe(ex51.program, query)
        assert not result.context_suffices
        # Every tree still needs extra conditions.
        summary = result.summary()
        assert "does not suffice" in summary
        # The r0 tree's residue is exactly the credits test.
        r0 = [d for d in result.descriptions
              if d.tree.labels == ("r0",)][0]
        assert r0.subsumed
        assert any(">= 30" in str(lit) for lit in r0.residue)

    def test_context_variable_pinned_to_target(self, ex51):
        # The context names a *different* student variable: it cannot
        # subsume any tree of honors(Stud).
        query = parse_describe(
            "describe honors(Stud) where graduated(Other, College), "
            "topten(College)")
        result = describe(ex51.program, query)
        assert not any(d.context_suffices for d in result.descriptions)

    def test_unknown_predicate_raises(self, ex51):
        query = parse_describe("describe ghost(X) where topten(X)")
        with pytest.raises(TransformError):
            describe(ex51.program, query)


class TestICAwareDescribe:
    """Extension: the context is chased with the ICs before coverage."""

    def test_implied_context_covers_tree(self, ex51):
        from repro.constraints import ic_from_text
        alumni = ic_from_text("alumni(S, C) -> graduated(S, C).")
        query = parse_describe(
            "describe honors(Stud) where alumni(Stud, College), "
            "topten(College)")
        without = describe(ex51.program, query)
        assert not without.context_suffices
        with_ic = describe(ex51.program, query, ics=(alumni,))
        assert with_ic.context_suffices

    def test_inconsistent_context_reported(self, ex51):
        from repro.constraints import ic_from_text
        denial = ic_from_text("graduated(S, C), topten(C) -> .")
        query = parse_describe(
            "describe honors(Stud) where graduated(Stud, College), "
            "topten(College)")
        result = describe(ex51.program, query, ics=(denial,))
        assert result.context_inconsistent
        assert "no object can satisfy" in result.summary()

    def test_evaluable_entailment_through_chase(self, ex51):
        from repro.constraints import ic_from_text
        # Scholarship holders have a GPA of at least 3.8.
        gpa_ic = ic_from_text(
            "scholarship(S), transcript(S, M, C, G) -> G >= 3.8.")
        query = parse_describe(
            "describe honors(Stud) where scholarship(Stud), "
            "transcript(Stud, Major, Cred, Gpa), Cred >= 30")
        without = describe(ex51.program, query)
        with_ic = describe(ex51.program, query, ics=(gpa_ic,))
        r0_without = [d for d in without.descriptions
                      if d.tree.labels == ("r0",)][0]
        r0_with = [d for d in with_ic.descriptions
                   if d.tree.labels == ("r0",)][0]
        assert len(r0_with.residue) < len(r0_without.residue)
