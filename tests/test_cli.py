"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """
r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
"""

ICS = """
ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
     par(Z3, Z3a, Z2, Z2a) -> .
"""

DB = """
par(bob, 30, ann, 72).
par(cal, 7, bob, 30).
"""


@pytest.fixture
def files(tmp_path):
    program = tmp_path / "program.dl"
    program.write_text(PROGRAM)
    ics = tmp_path / "ics.dl"
    ics.write_text(ICS)
    db = tmp_path / "db.dl"
    db.write_text(DB)
    return {"program": str(program), "ics": str(ics), "db": str(db)}


class TestEvaluate:
    def test_dumps_idb(self, files, capsys):
        assert main(["evaluate", files["program"], files["db"]]) == 0
        out = capsys.readouterr().out
        assert "anc(cal, 7, ann, 72)." in out

    def test_query(self, files, capsys):
        code = main(["evaluate", files["program"], files["db"],
                     "--query", "anc(cal, Xa, Y, Ya)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ann" in out and "bob" in out

    def test_stats_on_stderr(self, files, capsys):
        main(["evaluate", files["program"], files["db"], "--stats"])
        err = capsys.readouterr().err
        assert "# derivations:" in err

    def test_source_planner(self, files, capsys):
        assert main(["evaluate", files["program"], files["db"],
                     "--planner", "source"]) == 0

    def test_missing_file(self, capsys):
        assert main(["evaluate", "/no/such/file", "/none"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_interning_on_same_output(self, files, capsys):
        main(["evaluate", files["program"], files["db"]])
        plain = capsys.readouterr().out
        assert main(["evaluate", files["program"], files["db"],
                     "--interning", "on",
                     "--planner", "adaptive"]) == 0
        assert capsys.readouterr().out == plain


class TestExplainCommand:
    def test_plan_rendering(self, files, capsys):
        assert main(["explain", files["program"], files["db"]]) == 0
        out = capsys.readouterr().out
        assert "r1" in out and ("scan" in out or "probe" in out)

    def test_stats_flag_adds_statistics_section(self, files, capsys):
        assert main(["explain", files["program"], files["db"],
                     "--planner", "adaptive", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "statistics" in out.lower()
        assert "par/4" in out

    def test_kernels_interned(self, files, capsys):
        assert main(["explain", files["program"], files["db"],
                     "--kernels", "--interning", "on"]) == 0
        assert "interned" in capsys.readouterr().out


class TestOptimize:
    def test_pushes_pruning(self, files, capsys):
        code = main(["optimize", files["program"], "--ics", files["ics"]])
        assert code == 0
        out = capsys.readouterr().out
        assert "[prune]" in out and "applied" in out
        assert "Ya > 50" in out

    def test_unchanged_exit_code(self, files, tmp_path, capsys):
        empty = tmp_path / "none.dl"
        empty.write_text("unrelated(X) -> other(X).")
        code = main(["optimize", files["program"], "--ics", str(empty)])
        assert code == 1
        code = main(["optimize", files["program"], "--ics", str(empty),
                     "--allow-unchanged"])
        assert code == 0

    def test_rule_level_baseline(self, files, capsys):
        code = main(["optimize", files["program"], "--ics", files["ics"],
                     "--rule-level", "--allow-unchanged"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0/" in out.splitlines()[0]

    def test_automaton_mode(self, files, capsys):
        code = main(["optimize", files["program"], "--ics", files["ics"],
                     "--compilation", "automaton"])
        assert code == 0

    def test_invalid_program_rejected(self, tmp_path, files, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text("p(X, Z) :- e(X).")
        assert main(["optimize", str(bad), "--ics", files["ics"]]) == 2


class TestResidues:
    def test_lists_residues(self, files, capsys):
        assert main(["residues", files["program"],
                     "--ics", files["ics"]]) == 0
        out = capsys.readouterr().out
        assert "(r1 r1 r1; Ya <= 50 ->)" in out

    def test_no_residues_message(self, files, tmp_path, capsys):
        empty = tmp_path / "none.dl"
        empty.write_text("unrelated(A, B) -> other(A).")
        main(["residues", files["program"], "--ics", str(empty)])
        assert "(no residues)" in capsys.readouterr().out


class TestDescribeAndExamples:
    def test_describe(self, tmp_path, capsys):
        program = tmp_path / "honors.dl"
        program.write_text("""
            r0: honors(S) :- graduated(S, C), topten(C).
        """)
        code = main(["describe", str(program),
                     "describe honors(S) where graduated(S, C), "
                     "topten(C)"])
        assert code == 0
        assert "every object satisfying the context" in \
            capsys.readouterr().out

    def test_examples_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "example_4_3" in out and "example_5_1" in out

    def test_examples_show_one(self, capsys):
        assert main(["examples", "example_4_3"]) == 0
        out = capsys.readouterr().out
        assert "anc(X, Xa, Y, Ya)" in out and "ic1" in out


class TestBudgetFlags:
    def test_max_facts_exit_code(self, files, capsys):
        code = main(["evaluate", files["program"], files["db"],
                     "--max-facts", "1"])
        assert code == 4
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "Traceback" not in err

    def test_max_derivations_exit_code(self, files, capsys):
        assert main(["evaluate", files["program"], files["db"],
                     "--max-derivations", "1"]) == 4

    def test_timeout_exit_code(self, files, capsys):
        assert main(["evaluate", files["program"], files["db"],
                     "--timeout-s", "0"]) == 4
        assert "deadline" in capsys.readouterr().err

    def test_generous_budget_same_output(self, files, capsys):
        assert main(["evaluate", files["program"], files["db"]]) == 0
        plain = capsys.readouterr().out
        assert main(["evaluate", files["program"], files["db"],
                     "--timeout-s", "60", "--max-facts", "100000"]) == 0
        assert capsys.readouterr().out == plain

    def test_parse_error_exit_code(self, tmp_path, files, capsys):
        bad = tmp_path / "broken.dl"
        bad.write_text("p(X :-")
        assert main(["evaluate", str(bad), files["db"]]) == 3
        err = capsys.readouterr().err
        assert "parse error" in err and "Traceback" not in err
        # the caret excerpt points at the offending token
        assert "^" in err and "p(X :-" in err

    def test_safe_optimize(self, files, capsys):
        code = main(["optimize", files["program"], "--ics", files["ics"],
                     "--safe", "--verify", "sample"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verification: passed" in out and "[prune]" in out


class TestExperiments:
    def test_unknown_id_rejected(self, capsys):
        assert main(["experiments", "E99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_fast_experiment(self, capsys):
        assert main(["experiments", "e7"]) == 0
        out = capsys.readouterr().out
        assert "sequence-level vs rule-level" in out


class TestExperimentCSV:
    def test_csv_dir(self, tmp_path, capsys):
        assert main(["experiments", "e7", "--csv-dir",
                     str(tmp_path / "out")]) == 0
        written = (tmp_path / "out" / "E7.csv").read_text()
        assert "sequence-level" in written


MULTI_VIOLATION = """
p(X, Y) :- q(X).
a(X) :- e(X). a(X) :- b(X). b(X) :- a(X).
s(X) :- t(X), X > Z.
u(X) :- v(X), not w(X). w(X) :- u(X).
"""


class TestLint:
    def test_multi_violation_program_all_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text(MULTI_VIOLATION)
        assert main(["lint", str(bad)]) == 5
        out = capsys.readouterr().out
        # one run reports every violated assumption, with locations
        for code in ("RR001", "LIN001", "SAFE001", "STRAT001"):
            assert code in out, out
        assert "error" in out and ":" in out

    def test_warnings_only_exit_zero(self, tmp_path, capsys):
        warn = tmp_path / "warn.dl"
        warn.write_text("p(X) :- q(X, Y).")  # singleton Y
        assert main(["lint", str(warn)]) == 0
        out = capsys.readouterr().out
        assert "VAR001" in out

    def test_clean_program_exit_zero(self, files, capsys):
        assert main(["lint", files["program"]]) == 0

    def test_json_round_trips(self, tmp_path, capsys):
        import json

        from repro.analysis import AnalysisReport

        bad = tmp_path / "bad.dl"
        bad.write_text(MULTI_VIOLATION)
        assert main(["lint", str(bad), "--format", "json"]) == 5
        payload = json.loads(capsys.readouterr().out)
        report = AnalysisReport.from_dict(payload)
        assert report.has_errors
        assert payload["ok"] is False
        spans = [d["span"] for d in payload["diagnostics"] if d["span"]]
        assert spans and all("line" in s and "column" in s for s in spans)

    def test_out_writes_file(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.dl"
        bad.write_text(MULTI_VIOLATION)
        out_file = tmp_path / "report.json"
        assert main(["lint", str(bad), "--format", "json",
                     "--out", str(out_file)]) == 5
        assert json.loads(out_file.read_text())["ok"] is False

    def test_ics_and_query_flags(self, files, capsys):
        assert main(["lint", files["program"],
                     "--ics", files["ics"],
                     "--query", "anc(X, Xa, Y, Ya)"]) == 0

    def test_parse_error_is_lint_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.dl"
        bad.write_text("p(X :-")
        assert main(["lint", str(bad)]) == 5
        assert "PARSE001" in capsys.readouterr().out

    def test_pass_selection(self, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text(MULTI_VIOLATION)
        assert main(["lint", str(bad),
                     "--passes", "singleton-variables"]) == 0
        out = capsys.readouterr().out
        assert "VAR001" in out and "RR001" not in out

    def test_bundled_targets_clean(self, capsys):
        assert main(["lint", "--bundled"]) == 0
        assert "no bundled program has lint errors" in capsys.readouterr().out
