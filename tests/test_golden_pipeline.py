"""Golden tests: the exact optimized programs for every paper example.

These snapshots pin the end-to-end behaviour of the pipeline — residue
detection, action choice, compilation — so that refactors cannot
silently change what the optimizer emits.  If a change is intentional,
update the expected text and explain why in the commit.
"""

import pytest

from repro.core import SemanticOptimizer
from repro.datalog import format_program


def _optimize(example, **kwargs):
    return SemanticOptimizer(example.program, list(example.ics),
                             pred=example.pred, **kwargs).optimize()


class TestGoldenPrograms:
    def test_example_3_2_default(self, ex32):
        report = SemanticOptimizer(
            ex32.program, [ex32.ic("ic1")], pred="eval").optimize()
        expected = """\
r2: eval_support(P, S, T, M) :- eval(P, S, T), pays(M, G, S, T).

r0_d0: eval__d0(P, S, T) :- super(P, S, T).

r1_d0_step: eval__deep(P, S, T) :- works_with(P, P0), eval__d0(P0, S, T), expert(P, F), field(T, F).
r1_deep_step: eval__deep(P, S, T) :- works_with(P, P0), eval__deep(P0, S, T), field(T, F).

eval_from_d0: eval(P, S, T) :- eval__d0(P, S, T).
eval_from_deep: eval(P, S, T) :- eval__deep(P, S, T)."""
        assert format_program(report.optimized,
                              group_by_head=True) == expected

    def test_example_4_3_default(self, ex43):
        report = _optimize(ex43)
        expected = """\
r0_d0: anc__d0(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).

r1_d0_step: anc__d1(X, Xa, Y, Ya) :- anc__d0(X, Xa, Z, Za), par(Z, Za, Y, Ya).

r1_d1_step: anc__deep(X, Xa, Y, Ya) :- anc__d1(X, Xa, Z, Za), par(Z, Za, Y, Ya).
r1_deep_step_c0_n: anc__deep(X, Xa, Y, Ya) :- anc__deep(X, Xa, Z, Za), par(Z, Za, Y, Ya), Ya > 50.

anc_from_d0: anc(X, Xa, Y, Ya) :- anc__d0(X, Xa, Y, Ya).
anc_from_d1: anc(X, Xa, Y, Ya) :- anc__d1(X, Xa, Y, Ya).
anc_from_deep: anc(X, Xa, Y, Ya) :- anc__deep(X, Xa, Y, Ya)."""
        assert format_program(report.optimized,
                              group_by_head=True) == expected

    def test_example_4_1_threaded(self, ex41):
        report = _optimize(ex41, compilation="automaton")
        text = format_program(report.optimized, group_by_head=True)
        lines = text.splitlines()
        # The executive-guarded chain drops exactly the level-0
        # experienced atom (3 remain of the pattern's 4); the
        # not-executive chain keeps all 4.
        executive = [l for l in lines if "= executive" in l
                     and "!=" not in l]
        not_executive = [l for l in lines if "!= executive" in l]
        assert len(executive) == 1 and len(not_executive) == 1
        assert executive[0].count("experienced") == 3
        assert not_executive[0].count("experienced") == 4

    def test_example_3_2_automaton_collapsed(self, ex32):
        report = SemanticOptimizer(
            ex32.program, [ex32.ic("ic1")], pred="eval",
            compilation="automaton").optimize()
        expected = """\
r2: eval_support(P, S, T, M) :- eval(P, S, T), pays(M, G, S, T).

eval__alpha1_e+eval__alpha2: eval(P, S, T) :- works_with(P, P0), works_with(P0, P0_3_3), eval(P0_3_3, S, T), expert(P0, F_1_1), field(T, F_1_1), field(T, F).
eval__beta1+eval__gamma2_r0: eval(P, S, T) :- works_with(P, P0), super(P0, S, T), expert(P, F), field(T, F).
r0: eval(P, S, T) :- super(P, S, T)."""
        assert format_program(report.optimized,
                              group_by_head=True) == expected


class TestGoldenReports:
    def test_example_4_3_report_lines(self, ex43):
        summary = _optimize(ex43).summary()
        assert summary.splitlines()[0] == "1/2 residue pushes applied"
        assert "[prune] ic=ic1 seq=r1 r1 r1 residue='Ya <= 50 ->' " \
               "-> applied" in summary

    def test_example_3_2_both_ics_report(self, ex32):
        report = SemanticOptimizer(
            ex32.program, list(ex32.ics), pred="eval",
            small_relations={"doctoral"}).optimize()
        lines = report.summary().splitlines()
        assert lines[0] == "2/2 residue pushes applied"
        assert any("[eliminate] ic=ic1 seq=r1 r1" in line
                   for line in lines)
        assert any("[introduce] ic=ic2 seq=r2" in line for line in lines)

    def test_example_4_1_report(self, ex41):
        summary = _optimize(ex41).summary()
        assert "[eliminate] ic=ic1 seq=r2 r2 r2 r2" in summary
        assert "applied" in summary
