"""Tests for the resilience layer: budgets, deadlines, cancellation.

Every evaluation method must terminate within a configured budget and
raise the typed error carrying partial progress — and a generous budget
must never change answers (budgets only truncate with an explicit
error, never silently).
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import (Budget, BudgetExceededError, EvaluationCancelledError,
                   EvaluationError, evaluate, evaluate_with_magic,
                   magic_rewrite, parse_program, topdown_query)
from repro.datalog import parse_atom
from repro.engine import naive_evaluate, seminaive_evaluate
from repro.engine.topdown import TabledEvaluator
from repro.facts import Database
from repro.runtime import current_budget

REACH = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""


def chain_db(n: int) -> Database:
    db = Database()
    db.ensure("edge", 2)
    for i in range(n):
        db.add_fact("edge", f"n{i}", f"n{i + 1}")
    return db


@pytest.fixture
def program():
    return parse_program(REACH)


class TestBudgetObject:
    def test_typed_errors_subclass_evaluation_error(self):
        assert issubclass(BudgetExceededError, EvaluationError)
        assert issubclass(EvaluationCancelledError, EvaluationError)

    def test_remaining_and_elapsed(self):
        budget = Budget(timeout_s=60.0).start()
        assert 0.0 <= budget.elapsed_s() < 60.0
        assert 0.0 < budget.remaining_s() <= 60.0
        assert Budget().remaining_s() is None
        assert not budget.expired()

    def test_cancel_is_sticky_and_thread_safe(self):
        budget = Budget()
        thread = threading.Thread(target=budget.cancel)
        thread.start()
        thread.join()
        assert budget.cancelled
        with pytest.raises(EvaluationCancelledError):
            budget.tick()

    def test_child_shares_cancellation(self):
        parent = Budget(timeout_s=100.0).start()
        child = parent.child(timeout_s=5.0)
        assert child.timeout_s <= 5.0
        parent.cancel()
        with pytest.raises(EvaluationCancelledError):
            child.tick()

    def test_child_deadline_capped_by_parent(self):
        parent = Budget(timeout_s=0.5).start()
        child = parent.child(timeout_s=100.0)
        assert child.timeout_s <= 0.5

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Budget(deadline_check_interval=0)

    def test_ambient_installation(self, program):
        assert current_budget() is None
        with Budget(max_facts=3).activate() as budget:
            assert current_budget() is budget
            with pytest.raises(BudgetExceededError):
                evaluate(program, chain_db(10))
        assert current_budget() is None


class TestSeminaiveBudget:
    def test_max_facts(self, program):
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, chain_db(30), budget=Budget(max_facts=10))
        error = info.value
        assert error.resource == "facts"
        assert error.limit == 10
        assert error.stats is not None and error.stats.derivations == 10
        assert error.last_round is not None

    def test_max_derivations_counts_duplicates(self, program):
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, chain_db(30),
                     budget=Budget(max_derivations=25))
        stats = info.value.stats
        assert stats.derivations + stats.duplicate_derivations == 25

    def test_deadline(self, program):
        budget = Budget(timeout_s=0.0, deadline_check_interval=1)
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, chain_db(30), budget=budget)
        assert info.value.resource == "deadline"

    def test_max_rounds(self, program):
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, chain_db(30), budget=Budget(max_rounds=3))
        assert info.value.resource == "rounds"
        assert info.value.last_round == 3

    def test_cancellation(self, program):
        budget = Budget()
        budget.cancel()
        with pytest.raises(EvaluationCancelledError):
            evaluate(program, chain_db(5), budget=budget)

    def test_iteration_cap_raises_typed_error(self, program):
        """Satellite: cap exhaustion must raise, never silently truncate."""
        with pytest.raises(BudgetExceededError) as info:
            seminaive_evaluate(program, chain_db(30), max_iterations=4)
        assert info.value.resource == "rounds"
        assert info.value.limit == 4
        assert "4" in str(info.value)


class TestNaiveBudget:
    def test_max_derivations(self, program):
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, chain_db(30), method="naive",
                     budget=Budget(max_derivations=12))
        assert info.value.resource == "derivations"

    def test_deadline(self, program):
        budget = Budget(timeout_s=0.0, deadline_check_interval=1)
        with pytest.raises(BudgetExceededError):
            evaluate(program, chain_db(30), method="naive", budget=budget)

    def test_iteration_cap_raises_typed_error(self, program):
        with pytest.raises(BudgetExceededError) as info:
            naive_evaluate(program, chain_db(30), max_iterations=2)
        assert info.value.resource == "rounds"
        assert info.value.stats is not None

    def test_cancellation(self, program):
        budget = Budget()
        budget.cancel()
        with pytest.raises(EvaluationCancelledError):
            evaluate(program, chain_db(5), method="naive", budget=budget)


class TestTopdownBudget:
    def test_max_facts(self, program):
        goal = parse_atom('reach("n0", Y)')
        with pytest.raises(BudgetExceededError) as info:
            topdown_query(program, chain_db(40), goal,
                          budget=Budget(max_facts=10))
        assert info.value.resource == "facts"
        assert info.value.stats.derivations == 10

    def test_round_cap_raises_typed_error(self, program):
        goal = parse_atom('reach("n0", Y)')
        evaluator = TabledEvaluator(program, chain_db(10), max_rounds=1)
        with pytest.raises(BudgetExceededError) as info:
            evaluator.query(goal)
        assert info.value.resource == "rounds"

    def test_cancellation(self, program):
        budget = Budget()
        budget.cancel()
        with pytest.raises(EvaluationCancelledError):
            topdown_query(program, chain_db(5),
                          parse_atom('reach("n0", Y)'), budget=budget)


class TestMagicBudget:
    def test_evaluation_budget(self, program):
        query = parse_atom('reach("n0", Y)')
        with pytest.raises(BudgetExceededError) as info:
            evaluate_with_magic(program, chain_db(40), query,
                                budget=Budget(max_facts=10))
        assert info.value.resource == "facts"

    def test_rewrite_respects_cancellation(self, program):
        budget = Budget()
        budget.cancel()
        with pytest.raises(EvaluationCancelledError):
            magic_rewrite(program, parse_atom('reach("n0", Y)'),
                          budget=budget)

    def test_deadline(self, program):
        budget = Budget(timeout_s=0.0, deadline_check_interval=1)
        with pytest.raises(BudgetExceededError):
            evaluate_with_magic(program, chain_db(40),
                                parse_atom('reach("n0", Y)'),
                                budget=budget)


class TestPartialProgressReporting:
    def test_error_reports_how_far_evaluation_got(self, program):
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, chain_db(30), budget=Budget(max_facts=40))
        error = info.value
        # 30 base facts land in the initialization round; the rest are
        # delta-round derivations, so progress must be visible.
        assert error.stats.derivations == 40
        assert error.stats.iterations >= 1
        assert error.last_round >= 0
        assert "40" in str(error)


# ---------------------------------------------------------------------------
# Property: budgets never alter answers, they only truncate with an error
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=6).map(lambda i: f"n{i}")
edges = st.lists(st.tuples(nodes, nodes), min_size=0, max_size=18)


@settings(max_examples=30, deadline=None)
@given(edges)
def test_generous_budget_never_changes_answers(pairs):
    program = parse_program(REACH)
    db = Database()
    db.ensure("edge", 2)
    for a, b in pairs:
        db.add_fact("edge", a, b)
    unbudgeted = evaluate(program, db).facts("reach")
    generous = Budget(timeout_s=120.0, max_derivations=10_000_000,
                      max_facts=10_000_000, max_rounds=10_000)
    assert evaluate(program, db, budget=generous).facts("reach") \
        == unbudgeted
    with Budget(timeout_s=120.0).activate():
        assert evaluate(program, db,
                        method="naive").facts("reach") == unbudgeted
