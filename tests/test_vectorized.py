"""The vectorized executor: batch kernels, predicate cache, profiling.

The vectorized executor is an optimization, not a semantics change —
so the spine of this file is differential: identical facts *and*
identical :class:`EvalStats` counters against the compiled executor
across feature-covering programs (joins, comparisons, equality against
constants, negation, membership, binds, arithmetic fallback).  On top
of that it pins the unit contracts of the new pieces: the column-level
predicate cache's version-bump invalidation, batch codegen fallback
triggers, columnar replica shipping through the fork pool, and the
``--profile`` instrumentation.
"""

import random

import pytest

from repro.datalog import parse_program
from repro.engine import (EvalProfile, EvalStats, evaluate,
                          evaluate_with_magic, explain_kernels)
from repro.engine.compile import KernelCache
from repro.engine.vectorize import (PredicateCache, VectorRunner,
                                    columnar_backend_factory,
                                    compile_batch)
from repro.errors import EvaluationError
from repro.facts import Database
from repro.facts.backend import ColumnarBackend
from repro.facts.relation import Relation
from repro.facts.symbols import SymbolTable
from repro.workloads import random_digraph, transitive_closure_program

# ---------------------------------------------------------------------------
# Feature-covering corpus
# ---------------------------------------------------------------------------


def _tc():
    program = parse_program(transitive_closure_program())
    return program, random_digraph(40, 110, random.Random(3))


def _comparisons():
    program = parse_program("""
        r0: big(X, Y) :- edge(X, Y), Y > 2.
        r1: far(X, Z) :- big(X, Y), edge(Y, Z), X != Z, Z >= 1.
        r2: far(X, Z) :- far(X, Y), big(Y, Z), X < Z.
    """)
    edb = Database()
    rng = random.Random(5)
    for _ in range(120):
        edb.add_fact("edge", rng.randrange(9), rng.randrange(9))
    return program, edb


def _eq_const_and_member():
    program = parse_program("""
        r0: hop(X, Y) :- edge(X, Y), X = 1.
        r1: hop(X, Z) :- hop(X, Y), edge(Y, Z), edge(X, 1).
        r2: tag(X) :- hop(X, Y), Y = 99.
    """)
    edb = Database()
    rng = random.Random(7)
    for _ in range(90):
        edb.add_fact("edge", rng.randrange(7), rng.randrange(7))
    return program, edb


def _negation_and_bind():
    program = parse_program("""
        r0: lonely(X, K) :- node(X), K = 0, not edge(X, X).
        r1: seen(X, Y) :- edge(X, Y), not lonely(Y, 0).
        r2: seen(X, Z) :- seen(X, Y), seen(Y, Z).
    """)
    edb = Database()
    rng = random.Random(9)
    for n in range(8):
        edb.add_fact("node", n)
    for _ in range(40):
        edb.add_fact("edge", rng.randrange(8), rng.randrange(8))
    return program, edb


def _arithmetic_fallback():
    # ArithExpr bodies cannot be batch-lowered: every rule must fall
    # back to the compiled kernel and still agree.
    program = parse_program("""
        r0: nxt(X, Y) :- num(X), Y = X + 1, num(Y).
        r1: chain(X, Y) :- nxt(X, Y).
        r2: chain(X, Z) :- chain(X, Y), nxt(Y, Z).
    """)
    edb = Database()
    for n in range(20):
        edb.add_fact("num", n)
    return program, edb


CORPUS = [
    ("tc", _tc),
    ("comparisons", _comparisons),
    ("eq_const_member", _eq_const_and_member),
    ("negation_bind", _negation_and_bind),
    ("arith_fallback", _arithmetic_fallback),
]


def _snapshot(result):
    facts = {pred: frozenset(result.facts(pred))
             for pred in result.program.idb_predicates}
    return facts, result.stats.as_dict()


@pytest.mark.parametrize("name,build", CORPUS,
                         ids=[name for name, _ in CORPUS])
@pytest.mark.parametrize("planner", ["greedy", "adaptive", "source"])
def test_facts_and_stats_match_compiled(name, build, planner):
    program, edb = build()
    reference = _snapshot(evaluate(program, edb, planner=planner,
                                   interning="on", executor="compiled"))
    batched = _snapshot(evaluate(program, edb, planner=planner,
                                 interning="on", executor="vectorized"))
    assert batched == reference


def test_vectorized_without_interning_matches_too():
    program, edb = _comparisons()
    reference = _snapshot(evaluate(program, edb, executor="compiled"))
    assert _snapshot(evaluate(program, edb,
                              executor="vectorized")) == reference


def test_vectorized_naive_method_matches(self=None):
    program, edb = _tc()
    reference = _snapshot(evaluate(program, edb, method="naive",
                                   interning="on", executor="compiled"))
    assert _snapshot(evaluate(program, edb, method="naive",
                              interning="on",
                              executor="vectorized")) == reference


def test_vectorized_magic_matches():
    program = parse_program(transitive_closure_program())
    edb = random_digraph(30, 80, random.Random(13))
    from repro.datalog.atoms import Atom
    from repro.datalog.terms import Constant, Variable
    query = Atom("reach", (Constant(0), Variable("Y")))
    reference = evaluate_with_magic(program, edb, query,
                                    interning="on", executor="compiled")
    batched = evaluate_with_magic(program, edb, query, interning="on",
                                  executor="vectorized")
    assert {p: frozenset(batched.facts(p)) for p in batched.idb} \
        == {p: frozenset(reference.facts(p)) for p in reference.idb}
    assert batched.stats.as_dict() == reference.stats.as_dict()


def test_mixed_type_ordering_raises_identically():
    program = parse_program("""
        r0: low(X, Y) :- pair(X, Y), Y < 5.
    """)
    edb = Database()
    edb.add_fact("pair", 1, 3)
    edb.add_fact("pair", 2, "oops")
    for executor in ("compiled", "vectorized"):
        with pytest.raises(EvaluationError):
            evaluate(program, edb, interning="on", executor=executor)


# ---------------------------------------------------------------------------
# Predicate cache
# ---------------------------------------------------------------------------


class TestPredicateCache:
    def _relation(self, symbols, rows):
        relation = Relation("r", 2, symbols=symbols)
        for row in rows:
            relation.add(row)
        return relation

    def test_passing_codes_and_memoization(self):
        symbols = SymbolTable()
        cache = PredicateCache(symbols)
        relation = self._relation(symbols, [(1, 10), (2, 40), (3, 7)])
        passing = cache.passing(relation, 1, ">", 9, True)
        decoded = {symbols.value(code) for code in passing}
        assert decoded == {10, 40}
        assert cache.passing(relation, 1, ">", 9, True) is passing
        assert cache.builds == 1

    def test_version_bump_invalidates(self):
        symbols = SymbolTable()
        cache = PredicateCache(symbols)
        relation = self._relation(symbols, [(1, 10), (2, 4)])
        first = cache.passing(relation, 1, ">", 9, True)
        relation.add((3, 77))  # content change bumps backend.version
        second = cache.passing(relation, 1, ">", 9, True)
        assert second is not first
        assert cache.builds == 2
        assert {symbols.value(c) for c in second} == {10, 77}

    def test_entries_keyed_per_backend_uid(self):
        symbols = SymbolTable()
        cache = PredicateCache(symbols)
        rel_a = self._relation(symbols, [(1, 10)])
        rel_b = self._relation(symbols, [(1, 3)])
        in_a = cache.passing(rel_a, 1, ">", 9, True)
        in_b = cache.passing(rel_b, 1, ">", 9, True)
        assert len(in_a) == 1 and len(in_b) == 0

    def test_unorderable_codes_reraise_on_membership(self):
        symbols = SymbolTable()
        cache = PredicateCache(symbols)
        relation = self._relation(symbols, [(1, 10), (2, "text")])
        container = cache.passing(relation, 1, "<", 99, True)
        ten = symbols.code(10)
        text = symbols.code("text")
        assert ten in container
        with pytest.raises(EvaluationError):
            text in container


# ---------------------------------------------------------------------------
# Batch codegen + runner
# ---------------------------------------------------------------------------


def _first_kernel(program_text, edb, planner="greedy"):
    program = parse_program(program_text)
    interned = edb.interned()
    cache = KernelCache(symbols=interned.symbols, fuse=False)
    rule = next(iter(program))
    return interned, cache.kernel(rule, None, lambda atom, index: 0)


def test_arithmetic_body_declines_batch_lowering():
    edb = Database()
    edb.add_fact("num", 1)
    _interned, kernel = _first_kernel(
        "r0: nxt(X, Y) :- num(X), Y = X + 1.", edb)
    assert kernel.batch_plan is None
    assert compile_batch(kernel) is None


def test_batch_kernel_source_is_kept_for_introspection():
    edb = Database()
    edb.add_fact("edge", 1, 2)
    _interned, kernel = _first_kernel(
        "r0: reach(X, Y) :- edge(X, Y).", edb)
    batch = compile_batch(kernel)
    assert batch is not None
    assert "def _batch(" in batch.source
    assert kernel.fused is False and kernel.deep_fused is False


def test_runner_falls_back_when_hook_installed():
    program, edb = _tc()
    interned = edb.interned()
    runner = VectorRunner(symbols=interned.symbols)
    cache = KernelCache(symbols=interned.symbols, fuse=False)
    rule = next(r for r in program if len(r.body) == 1)
    kernel = cache.kernel(rule, None, lambda atom, index: 0)

    def fetch(atom, index):
        return interned.relation_or_empty(atom.pred, atom.arity)

    vetoed = []

    def hook(pred, row, round_index):
        vetoed.append(pred)
        return True

    with_hook = runner.run(kernel, fetch, EvalStats(), hook=hook)
    without = runner.run(kernel, fetch, EvalStats())
    assert sorted(with_hook) == sorted(without)
    assert vetoed  # the fallback path consulted the hook per row


def test_explain_kernels_vectorized_section():
    program = parse_program("""
        r0: reach(X, Y) :- edge(X, Y), Y != 3.
        r1: nxt(X, Y) :- num(X), Y = X + 1.
    """)
    edb = Database()
    edb.add_fact("edge", 1, 2)
    edb.add_fact("num", 4)
    text = explain_kernels(program, edb.interned(),
                           executor="vectorized")
    assert "vectorized execution" in text
    assert "batch chain" in text and "check[!=]" in text
    assert "falls back to the compiled kernel" in text
    plain = explain_kernels(program, edb, executor="vectorized")
    assert "EDB not interned" in plain


# ---------------------------------------------------------------------------
# Columnar shipping through the fork pool
# ---------------------------------------------------------------------------


def test_parallel_executor_ships_columnar_replicas():
    program, edb = _tc()
    columnar = edb.interned(backend_factory=columnar_backend_factory)
    assert any(isinstance(columnar.relation(p).backend, ColumnarBackend)
               for p in columnar)
    reference = _snapshot(evaluate(program, edb, interning="on",
                                   executor="compiled"))
    shipped = _snapshot(evaluate(program, columnar, interning="on",
                                 executor="parallel", shards=2,
                                 parallel_mode="fork"))
    assert shipped == reference


# ---------------------------------------------------------------------------
# Profiling
# ---------------------------------------------------------------------------


def test_profile_records_kernels_and_rounds():
    program, edb = _tc()
    profile = EvalProfile()
    result = evaluate(program, edb, interning="on",
                      executor="vectorized", profile=profile)
    report = profile.as_dict()
    assert report["kernels"] and report["rounds"]
    total_rows = sum(entry["rows"] for entry in
                     report["kernels"].values())
    assert total_rows >= result.stats.derivations
    for entry in report["kernels"].values():
        assert entry["calls"] >= 1 and entry["seconds"] >= 0.0
    first = report["rounds"][0]
    assert first["round"] == 0 and "reach" in first["deltas"]
