"""Engine benchmark baseline: workload construction and the CI gate.

The full benchmark runs in CI's bench-smoke job; here we keep the cheap
invariants — the workload corpus is well-formed and the regression gate
trips on exactly the conditions it documents.
"""

from __future__ import annotations

import pytest

from repro.bench.engine_bench import (build_workloads,
                                      regression_failures)


def test_build_workloads_covers_the_three_scenarios():
    workloads = build_workloads("smoke")
    assert [w.name for w in workloads] == [
        "transitive_closure", "same_generation", "magic"]
    for workload in workloads:
        assert workload.edb.total_facts() > 0
        assert workload.query.pred == workload.answer_pred


def test_build_workloads_rejects_unknown_scale():
    with pytest.raises(ValueError, match="unknown scale"):
        build_workloads("galactic")


def _report(speedup, agreement_ok=True, configs_ok=True,
            interned_speedup=2.0, parallel_speedup=2.0, repeats=3,
            focus=None):
    def block(name):
        methods = {
            method: {"compiled": {"wall_ms": 10.0},
                     "interpreted": {"wall_ms": 20.0},
                     "speedup": 2.0}
            for method in ("naive", "seminaive", "magic")}
        methods["seminaive"]["speedup"] = speedup
        return {
            "name": name,
            "methods": methods,
            "seminaive_configs": {
                "baseline": {"wall_ms": 10.0},
                "interned_adaptive": {
                    "wall_ms": 10.0 / interned_speedup},
                "parallel": {"wall_ms": 10.0 / parallel_speedup},
            },
            "interned_speedup": interned_speedup,
            "parallel_speedup": parallel_speedup,
            "agreement": {
                "methods_agree": agreement_ok,
                "executors_agree": True,
                "naive_matches_seminaive": True,
                "configs_agree": configs_ok,
            },
        }
    report = {"repeats": repeats,
              "workloads": [block("transitive_closure"),
                            block("same_generation")]}
    if focus is not None:
        report["focus"] = focus
        for entry in report["workloads"]:
            entry["methods"] = {}
    return report


def test_regression_gate_passes_when_compiled_is_faster():
    assert regression_failures(_report(2.4)) == []


def test_regression_gate_allows_slowdown_within_ratio():
    # 1.2x slower than interpreted is inside the default 1.5x allowance.
    assert regression_failures(_report(1 / 1.2)) == []


def test_regression_gate_fails_on_excessive_slowdown():
    failures = regression_failures(_report(1 / 2.0))
    assert failures and "slower than interpreted" in failures[0]


def test_regression_gate_fails_on_disagreement():
    failures = regression_failures(_report(2.0, agreement_ok=False))
    assert failures == ["transitive_closure: methods_agree is false",
                        "same_generation: methods_agree is false"]


def test_regression_gate_fails_on_config_disagreement():
    failures = regression_failures(_report(2.0, configs_ok=False))
    assert "transitive_closure: configs_agree is false" in failures


def test_per_cell_floor_fails_on_missing_executor_cell():
    report = _report(2.0)
    del report["workloads"][0]["methods"]["magic"]["interpreted"]
    failures = regression_failures(report)
    assert failures == ["transitive_closure/magic/interpreted: cell "
                        "missing or budget exceeded"]


def test_per_cell_floor_fails_on_slow_config_cell():
    # 2x slower than the compiled baseline is outside the default 1.5x
    # allowance — the per-cell floor trips even with no speedup gates.
    failures = regression_failures(_report(2.0, parallel_speedup=0.5))
    assert any("parallel: 2.00x slower than the compiled baseline"
               in f for f in failures)


def test_focused_report_skips_method_grid():
    # Smoke-mode reports carry no methods grid; the config floors and
    # speedup gates still apply.
    report = _report(2.0, focus="parallel")
    assert regression_failures(report,
                               min_parallel_speedup=1.3) == []
    report = _report(2.0, parallel_speedup=1.1, focus="parallel")
    failures = regression_failures(report, min_parallel_speedup=1.3)
    assert any("parallel executor is only 1.10x" in f
               for f in failures)


def test_interned_gate_off_by_default():
    # 1.2x slower than baseline stays inside the per-cell allowance, so
    # without the explicit floor the eroded speedup passes.
    assert regression_failures(
        _report(2.0, interned_speedup=1 / 1.2)) == []


def test_interned_gate_passes_at_threshold():
    report = _report(2.0, interned_speedup=1.6)
    assert regression_failures(report, min_interned_speedup=1.5) == []


def test_interned_gate_fails_below_threshold():
    report = _report(2.0, interned_speedup=1.1)
    failures = regression_failures(report, min_interned_speedup=1.5)
    # Both gated workloads report the miss.
    assert len(failures) == 2
    assert all("interned+adaptive is only 1.10x" in f for f in failures)


def test_parallel_gate_passes_at_threshold():
    report = _report(2.0, parallel_speedup=1.4)
    assert regression_failures(report, min_parallel_speedup=1.3) == []


def test_parallel_gate_fails_below_threshold():
    report = _report(2.0, parallel_speedup=1.1)
    failures = regression_failures(report, min_parallel_speedup=1.3)
    assert len(failures) == 1
    assert "parallel executor is only 1.10x" in failures[0]


def test_parallel_gate_fails_on_missing_measurement():
    report = _report(2.0)
    for block in report["workloads"]:
        del block["parallel_speedup"]
        del block["seminaive_configs"]["parallel"]
    failures = regression_failures(report, min_parallel_speedup=1.3)
    assert failures and "no parallel_speedup" in failures[0]


def test_interned_gate_fails_on_missing_measurement():
    report = _report(2.0)
    for block in report["workloads"]:
        del block["interned_speedup"]
    failures = regression_failures(report, min_interned_speedup=1.5)
    assert failures and "no interned_speedup" in failures[0]


def test_regression_gate_fails_on_missing_workload():
    assert regression_failures({"repeats": 3, "workloads": []}) == \
        ["workload 'transitive_closure' missing from report"]


def test_regression_gate_fails_on_too_few_repeats():
    failures = regression_failures(_report(2.4, repeats=1))
    assert failures == ["report measured with repeats=1; gates need "
                        ">= 3 for stable medians"]


def test_regression_gate_fails_on_timeout_row():
    report = _report(2.0)
    cell = report["workloads"][0]["methods"]["seminaive"]["compiled"]
    cell["budget_exceeded"] = True
    del report["workloads"][0]["methods"]["seminaive"]["speedup"]
    failures = regression_failures(report)
    assert failures == ["transitive_closure/seminaive/compiled: cell "
                        "missing or budget exceeded"]
