"""Engine benchmark baseline: workload construction and the CI gate.

The full benchmark runs in CI's bench-smoke job; here we keep the cheap
invariants — the workload corpus is well-formed and the regression gate
trips on exactly the conditions it documents.
"""

from __future__ import annotations

import pytest

from repro.bench.engine_bench import (build_workloads,
                                      regression_failures)


def test_build_workloads_covers_the_three_scenarios():
    workloads = build_workloads("smoke")
    assert [w.name for w in workloads] == [
        "transitive_closure", "same_generation", "magic"]
    for workload in workloads:
        assert workload.edb.total_facts() > 0
        assert workload.query.pred == workload.answer_pred


def test_build_workloads_rejects_unknown_scale():
    with pytest.raises(ValueError, match="unknown scale"):
        build_workloads("galactic")


def _report(speedup, agreement_ok=True, configs_ok=True,
            interned_speedup=2.0, repeats=3):
    def block(name):
        return {
            "name": name,
            "methods": {"seminaive": {"speedup": speedup}},
            "interned_speedup": interned_speedup,
            "agreement": {
                "methods_agree": agreement_ok,
                "executors_agree": True,
                "naive_matches_seminaive": True,
                "configs_agree": configs_ok,
            },
        }
    return {"repeats": repeats,
            "workloads": [block("transitive_closure"),
                          block("same_generation")]}


def test_regression_gate_passes_when_compiled_is_faster():
    assert regression_failures(_report(2.4)) == []


def test_regression_gate_allows_slowdown_within_ratio():
    # 1.2x slower than interpreted is inside the default 1.5x allowance.
    assert regression_failures(_report(1 / 1.2)) == []


def test_regression_gate_fails_on_excessive_slowdown():
    failures = regression_failures(_report(1 / 2.0))
    assert failures and "slower than interpreted" in failures[0]


def test_regression_gate_fails_on_disagreement():
    failures = regression_failures(_report(2.0, agreement_ok=False))
    assert failures == ["transitive_closure: methods_agree is false",
                        "same_generation: methods_agree is false"]


def test_regression_gate_fails_on_config_disagreement():
    failures = regression_failures(_report(2.0, configs_ok=False))
    assert "transitive_closure: configs_agree is false" in failures


def test_interned_gate_off_by_default():
    assert regression_failures(_report(2.0, interned_speedup=0.5)) == []


def test_interned_gate_passes_at_threshold():
    report = _report(2.0, interned_speedup=1.6)
    assert regression_failures(report, min_interned_speedup=1.5) == []


def test_interned_gate_fails_below_threshold():
    report = _report(2.0, interned_speedup=1.1)
    failures = regression_failures(report, min_interned_speedup=1.5)
    # Both gated workloads report the miss.
    assert len(failures) == 2
    assert all("interned+adaptive is only 1.10x" in f for f in failures)


def test_interned_gate_fails_on_missing_measurement():
    report = _report(2.0)
    for block in report["workloads"]:
        del block["interned_speedup"]
    failures = regression_failures(report, min_interned_speedup=1.5)
    assert failures and "no interned_speedup" in failures[0]


def test_regression_gate_fails_on_missing_workload():
    assert regression_failures({"repeats": 3, "workloads": []}) == \
        ["workload 'transitive_closure' missing from report"]


def test_regression_gate_fails_on_too_few_repeats():
    failures = regression_failures(_report(2.4, repeats=1))
    assert failures == ["report measured with repeats=1; gates need "
                        ">= 3 for stable medians"]


def test_regression_gate_fails_on_timeout_row():
    report = _report(2.0)
    del report["workloads"][0]["methods"]["seminaive"]["speedup"]
    failures = regression_failures(report)
    assert failures and "no compiled-vs-interpreted timing" in failures[0]
