"""Engine benchmark baseline: workload construction and the CI gate.

The full benchmark runs in CI's bench-smoke job; here we keep the cheap
invariants — the workload corpus is well-formed and the regression gate
trips on exactly the conditions it documents.
"""

from __future__ import annotations

import pytest

from repro.bench.engine_bench import (build_workloads,
                                      regression_failures)


def test_build_workloads_covers_the_three_scenarios():
    workloads = build_workloads("smoke")
    assert [w.name for w in workloads] == [
        "transitive_closure", "same_generation", "magic"]
    for workload in workloads:
        assert workload.edb.total_facts() > 0
        assert workload.query.pred == workload.answer_pred


def test_build_workloads_rejects_unknown_scale():
    with pytest.raises(ValueError, match="unknown scale"):
        build_workloads("galactic")


def _report(speedup, agreement_ok=True):
    return {
        "workloads": [{
            "name": "transitive_closure",
            "methods": {"seminaive": {"speedup": speedup}},
            "agreement": {
                "methods_agree": agreement_ok,
                "executors_agree": True,
                "naive_matches_seminaive": True,
            },
        }],
    }


def test_regression_gate_passes_when_compiled_is_faster():
    assert regression_failures(_report(2.4)) == []


def test_regression_gate_allows_slowdown_within_ratio():
    # 1.2x slower than interpreted is inside the default 1.5x allowance.
    assert regression_failures(_report(1 / 1.2)) == []


def test_regression_gate_fails_on_excessive_slowdown():
    failures = regression_failures(_report(1 / 2.0))
    assert failures and "slower than interpreted" in failures[0]


def test_regression_gate_fails_on_disagreement():
    failures = regression_failures(_report(2.0, agreement_ok=False))
    assert failures == ["transitive_closure: methods_agree is false"]


def test_regression_gate_fails_on_missing_workload():
    assert regression_failures({"workloads": []}) == \
        ["workload 'transitive_closure' missing from report"]


def test_regression_gate_fails_on_timeout_row():
    report = _report(2.0)
    del report["workloads"][0]["methods"]["seminaive"]["speedup"]
    failures = regression_failures(report)
    assert failures and "no compiled-vs-interpreted timing" in failures[0]
