"""Tests for Algorithm 3.1 — residue generation over expansion sequences.

Each paper example's stated outcome is asserted verbatim, and the graph
method is cross-checked against the exhaustive reference enumerator.
"""

import pytest

from repro.constraints import ic_from_text, ics_from_text
from repro.core import (detect_sequences, generate_residues,
                        generate_residues_exhaustive, rule_level_residues)
from repro.core.residues import introduction_eligible
from repro.datalog import parse_program
from repro.errors import ConstraintError


class TestExample21:
    """Example 3.1: the IC maximally subsumes only the r0-chains."""

    def test_detected_sequence(self, ex21):
        sequences = detect_sequences(ex21.program, "p", ex21.ic("ic"))
        assert ("r0", "r0", "r0") in sequences

    def test_residue_on_r0x3_is_loose(self, ex21):
        items = generate_residues(ex21.program, "p", ex21.ic("ic"))
        by_seq = {item.sequence: item for item in items}
        short = by_seq[("r0", "r0", "r0")]
        assert short.residue.kind == "unconditional fact"
        assert short.useful and not short.strictly_useful

    def test_extension_finds_strict_placement(self, ex21):
        items = generate_residues(ex21.program, "p", ex21.ic("ic"))
        strict = [item for item in items if item.strictly_useful]
        assert [item.sequence for item in strict] == \
            [("r0", "r0", "r0", "r0")]
        assert str(strict[0].residue.head) == "d(Y5, X6)"

    def test_rule_level_finds_nothing_maximal(self, ex21):
        items = rule_level_residues(ex21.program, ex21.ic("ic"))
        # Only the non-maximal (partial) readings exist at rule level;
        # maximal free subsumption of all three atoms needs the chain.
        assert all(not item.strictly_useful for item in items)


class TestExample32:
    def test_sequence_and_residue(self, ex32):
        items = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        assert len(items) == 1
        item = items[0]
        assert item.sequence == ("r1", "r1")
        assert str(item.residue) == "-> expert(P, F)"
        assert item.residue.kind == "unconditional fact"
        assert item.useful and not item.strictly_useful

    def test_ic2_is_rule_level(self, ex32):
        items = rule_level_residues(ex32.program, ex32.ic("ic2"))
        assert len(items) == 1
        item = items[0]
        assert item.sequence == ("r2",)
        assert item.residue.head.pred == "doctoral"
        assert not item.useful  # head does not occur in r2
        assert introduction_eligible(item)


class TestExample41:
    def test_usefulness_extension_reaches_r2x4(self, ex41):
        items = generate_residues(ex41.program, "triple", ex41.ic("ic1"))
        strict = [item for item in items if item.strictly_useful]
        assert [item.sequence for item in strict] == \
            [("r2", "r2", "r2", "r2")]
        residue = strict[0].residue
        assert residue.kind == "conditional fact"
        assert str(residue.head) == "experienced(U)"

    def test_extension_respects_budget(self, ex41):
        # A budget of 1 per side caps windows at three instances, which
        # is too short for the head to land strictly.
        items = generate_residues(ex41.program, "triple", ex41.ic("ic1"),
                                  max_extend=1)
        assert all(not item.strictly_useful for item in items)


class TestExample43:
    def test_both_pruning_sequences(self, ex43):
        items = generate_residues(ex43.program, "anc", ex43.ic("ic1"))
        sequences = {item.sequence for item in items}
        assert ("r1", "r1", "r1") in sequences
        assert ("r1", "r1", "r0") in sequences
        for item in items:
            assert item.residue.kind == "conditional null"
            assert str(item.residue) == "Ya <= 50 ->"

    def test_exhaustive_agrees(self, ex43):
        graph = {(i.sequence, str(i.residue))
                 for i in generate_residues(ex43.program, "anc",
                                            ex43.ic("ic1"))}
        brute = {(i.sequence, str(i.residue))
                 for i in generate_residues_exhaustive(
                     ex43.program, "anc", ex43.ic("ic1"))}
        assert graph == brute


class TestCrossCheck:
    """Graph detection vs exhaustive enumeration on all examples."""

    @pytest.mark.parametrize("fixture,pred,label", [
        ("ex21", "p", "ic"), ("ex32", "eval", "ic1"),
        ("ex43", "anc", "ic1"),
    ])
    def test_same_residues(self, fixture, pred, label, request):
        example = request.getfixturevalue(fixture)
        ic = example.ic(label)
        graph = {(i.sequence, str(i.residue))
                 for i in generate_residues(example.program, pred, ic)}
        max_len = max((len(s) for s, _ in graph), default=3)
        brute = {(i.sequence, str(i.residue))
                 for i in generate_residues_exhaustive(
                     example.program, pred, ic, max_length=max_len)}
        assert graph == brute


class TestGuards:
    def test_idb_ic_rejected(self, ex43):
        ic = ic_from_text("anc(X, Xa, Y, Ya) -> par(X, Xa, Y, Ya).")
        with pytest.raises(ConstraintError):
            generate_residues(ex43.program, "anc", ic)

    def test_unrelated_ic_yields_nothing(self, ex43):
        ic = ic_from_text("other(X, Y) -> .")
        assert generate_residues(ex43.program, "anc", ic) == []

    def test_useful_only_off_keeps_more(self, ex32):
        strict = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        everything = generate_residues(ex32.program, "eval",
                                       ex32.ic("ic1"), useful_only=False)
        assert len(everything) >= len(strict)


class TestSpanMinimality:
    def test_longer_windows_filtered(self, ex32):
        """The r1 r1 footprint inside r1 r1 r1 does not span, so the
        three-level sequence contributes no duplicate residue."""
        from repro.core.residues import residues_for_sequence
        items = residues_for_sequence(ex32.program, "eval",
                                      ("r1", "r1", "r1"), ex32.ic("ic1"))
        spanning = [i for i in items
                    if i.residue.head is not None
                    and i.residue.head.pred == "expert"]
        # Matches exist but none spans levels 0..2 with a landing head.
        assert all(not i.strictly_useful for i in spanning)
