"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (ArithExpr, Constant, FreshVariableSupply,
                                 Variable, is_variable_name, mk_term,
                                 variables_of)


class TestVariable:
    def test_str(self):
        assert str(Variable("X")) == "X"

    def test_equality_and_hash(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_repr(self):
        assert "X" in repr(Variable("X"))


class TestConstant:
    def test_symbol_str_is_bare(self):
        assert str(Constant("alice")) == "alice"

    def test_non_identifier_is_quoted(self):
        assert str(Constant("New York")) == "'New York'"

    def test_uppercase_string_is_quoted(self):
        # Would otherwise re-parse as a variable.
        assert str(Constant("Bob")) == "'Bob'"

    def test_quote_escaping(self):
        assert str(Constant("it's")) == "'it\\'s'"

    def test_numbers(self):
        assert str(Constant(42)) == "42"
        assert str(Constant(2.5)) == "2.5"

    def test_equality_distinguishes_types(self):
        assert Constant(1) != Constant("1")


class TestArithExpr:
    def test_str(self):
        expr = ArithExpr("+", Variable("X"), Constant(1))
        assert str(expr) == "(X + 1)"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ArithExpr("%", Variable("X"), Constant(1))

    def test_nested(self):
        inner = ArithExpr("*", Variable("X"), Constant(2))
        outer = ArithExpr("-", inner, Variable("Y"))
        assert str(outer) == "((X * 2) - Y)"


class TestMkTerm:
    def test_uppercase_becomes_variable(self):
        assert mk_term("X1") == Variable("X1")

    def test_underscore_becomes_variable(self):
        assert mk_term("_tmp") == Variable("_tmp")

    def test_lowercase_becomes_constant(self):
        assert mk_term("alice") == Constant("alice")

    def test_numbers_become_constants(self):
        assert mk_term(7) == Constant(7)
        assert mk_term(1.5) == Constant(1.5)

    def test_terms_pass_through(self):
        var = Variable("X")
        assert mk_term(var) is var

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            mk_term(object())


class TestVariablesOf:
    def test_variable(self):
        assert list(variables_of(Variable("X"))) == [Variable("X")]

    def test_constant_has_none(self):
        assert list(variables_of(Constant(3))) == []

    def test_arith_collects_left_to_right(self):
        expr = ArithExpr("+", Variable("A"),
                         ArithExpr("*", Variable("B"), Variable("A")))
        assert list(variables_of(expr)) == [Variable("A"), Variable("B"),
                                            Variable("A")]


class TestIsVariableName:
    @pytest.mark.parametrize("name,expected", [
        ("X", True), ("Xa", True), ("_", True), ("x", False),
        ("aX", False), ("X1", True), ("1X", False),
    ])
    def test_cases(self, name, expected):
        assert is_variable_name(name) is expected


class TestFreshVariableSupply:
    def test_avoids_reserved(self):
        supply = FreshVariableSupply({"V_1", "V_2"})
        fresh = supply.fresh()
        assert fresh.name not in {"V_1", "V_2"}

    def test_never_repeats(self):
        supply = FreshVariableSupply()
        names = {supply.fresh().name for _ in range(50)}
        assert len(names) == 50

    def test_base_prefix(self):
        supply = FreshVariableSupply()
        assert supply.fresh("Xa").name.startswith("Xa_")

    def test_reserve_extends(self):
        supply = FreshVariableSupply()
        first = supply.fresh("Q")
        supply.reserve({"Q_2", "Q_3"})
        names = {supply.fresh("Q").name for _ in range(5)}
        assert not names & {"Q_2", "Q_3", first.name}
