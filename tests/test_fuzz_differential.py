"""Differential fuzzing: every executor/planner/interning combo agrees.

Random linear-recursive programs (with negation, comparisons and
constant anchors mixed in) are evaluated under the full knob matrix.
Evaluation is deterministic, so every combination must produce the same
fact fingerprint — and resilience behavior (budget exhaustion, chaos
faults) must surface identical payloads regardless of which join
machinery was running when the limit hit.
"""

import random

import pytest

from repro.datalog import parse_program
from repro.engine import evaluate
from repro.errors import BudgetExceededError
from repro.runtime import ChaosError
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosPlan
from repro.workloads import random_linear_program

#: (executor, planner, interning, shards).  ``shards`` is only
#: meaningful for the parallel executor (None elsewhere); the parallel
#: combos sweep shard counts so scatter/merge accounting is checked
#: against the single-threaded executors at every partition width.
#: The vectorized combos sweep every planner both interned (batch
#: kernels over columnar storage) and not (falls back to the compiled
#: kernels), so the whole-frontier accounting is differentially checked
#: against the row-at-a-time executors under each join order.
#: The cbo combos pin the cost-based enumerating optimizer's
#: whole-program degeneration: with no query in sight its rewrite
#: space collapses to the identity program running on the adaptive
#: machinery, so facts, counters, budget payloads and chaos ordinals
#: must all be bit-identical to every other cell — including under the
#: vectorized executor, where cbo additionally makes a per-rule
#: batch-vs-row kernel choice (both verdicts are pinned to identical
#: counters).
COMBOS = [(executor, planner, interning, None)
          for executor in ("compiled", "interpreted", "vectorized")
          for planner in ("greedy", "adaptive", "source", "cbo")
          for interning in ("off", "on")]
COMBOS += [("parallel", planner, interning, shards)
           for planner in ("adaptive", "cbo")
           for interning in ("off", "on")
           for shards in (1, 2, 4)]


def fingerprint(result):
    return tuple(sorted(
        (pred, tuple(sorted(result.facts(pred))))
        for pred in result.program.idb_predicates))


@pytest.mark.parametrize("seed", range(8))
def test_all_combos_derive_identical_facts(seed):
    text, edb = random_linear_program(random.Random(seed))
    program = parse_program(text)
    prints = {}
    counts = {}
    for combo in COMBOS:
        executor, planner, interning, shards = combo
        result = evaluate(program, edb, executor=executor,
                          planner=planner, interning=interning,
                          shards=shards)
        prints[combo] = fingerprint(result)
        counts[combo] = (result.stats.derivations,
                         result.stats.duplicate_derivations)
    assert len(set(prints.values())) == 1, \
        f"seed {seed}: fact fingerprints diverge"
    # Total derivation events are join-order independent: every combo
    # derives the same solution multiset per rule firing.
    assert len(set(counts.values())) == 1, \
        f"seed {seed}: derivation counts diverge: {counts}"


@pytest.mark.parametrize("seed", (3, 11))
def test_budget_exhaustion_payloads_match_across_combos(seed):
    text, edb = random_linear_program(random.Random(seed))
    program = parse_program(text)
    payloads = set()
    for executor, planner, interning, shards in COMBOS:
        budget = Budget(max_derivations=120)
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, edb, executor=executor, planner=planner,
                     interning=interning, shards=shards, budget=budget)
        error = info.value
        # Which row tipped the counter over differs by enumeration
        # order, but the accounted totals at the boundary must not.
        payloads.add((error.resource, error.limit, error.spent,
                      error.last_round))
    assert len(payloads) == 1, payloads


@pytest.mark.parametrize("seed", (5,))
def test_chaos_fault_ordinals_match_across_combos(seed):
    text, edb = random_linear_program(random.Random(seed))
    program = parse_program(text)
    triggered = set()
    for executor, planner, interning, shards in COMBOS:
        plan = ChaosPlan().fail_derivation(40)
        with plan.active():
            with pytest.raises(ChaosError):
                evaluate(program, edb, executor=executor,
                         planner=planner, interning=interning,
                         shards=shards)
        triggered.add(tuple(plan.triggered))
    assert len(triggered) == 1, triggered
