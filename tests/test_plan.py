"""Tests for join-plan introspection."""

import pytest

from repro.datalog import parse_program
from repro.engine import evaluate
from repro.engine.plan import explain_plan, plan_rule
from repro.facts import Database


@pytest.fixture
def join_program():
    return parse_program("""
        r0: s(P, S, M) :- big(P, S), pays(M, S), doctoral(S).
    """)


@pytest.fixture
def skewed_db():
    db = Database()
    for i in range(50):
        db.add_fact("big", f"p{i}", f"s{i % 10}")
    for i in range(10):
        db.add_fact("pays", i * 100, f"s{i}")
    db.add_fact("doctoral", "s1")
    return db


class TestGreedyPlans:
    def test_smallest_relation_anchors(self, join_program, skewed_db):
        plan = plan_rule(join_program.rule("r0"), join_program, skewed_db)
        first = plan.steps[0]
        assert first.kind == "scan"
        assert first.literal.pred == "doctoral"

    def test_later_atoms_probe(self, join_program, skewed_db):
        plan = plan_rule(join_program.rule("r0"), join_program, skewed_db)
        kinds = [step.kind for step in plan.steps]
        assert kinds == ["scan", "probe", "probe"]
        # pays is probed on its bound S column (column 1).
        pays_step = [s for s in plan.steps
                     if getattr(s.literal, "pred", None) == "pays"][0]
        assert pays_step.bound_columns == (1,)

    def test_source_planner_keeps_order(self, join_program, skewed_db):
        plan = plan_rule(join_program.rule("r0"), join_program, skewed_db,
                         planner="source")
        preds = [getattr(s.literal, "pred", None) for s in plan.steps]
        assert preds == ["big", "pays", "doctoral"]

    def test_comparisons_marked(self, skewed_db):
        program = parse_program(
            "q(M) :- pays(M, S), M > 100, D = M + 1.")
        plan = plan_rule(program.rule("r0"), program, skewed_db)
        kinds = {str(s.literal): s.kind for s in plan.steps}
        assert kinds["M > 100"] == "check"
        assert kinds["D = (M + 1)"] == "bind"

    def test_idb_sizes_from_result(self, tc_program, chain_db):
        result = evaluate(tc_program, chain_db)
        plan = plan_rule(tc_program.rule("r1"), tc_program, chain_db,
                         idb=result.idb)
        reach_step = [s for s in plan.steps
                      if getattr(s.literal, "pred", None) == "reach"][0]
        assert reach_step.relation_size == 6

    def test_explain_plan_renders_all_rules(self, tc_program, chain_db):
        text = explain_plan(tc_program, chain_db)
        assert "r0:" in text and "r1:" in text
        assert "scan" in text or "probe" in text

    def test_render_contains_sizes(self, join_program, skewed_db):
        plan = plan_rule(join_program.rule("r0"), join_program, skewed_db)
        assert "(~1 rows)" in plan.render()
