"""Tests for the depth-class (periodic) compilation and chain inlining."""

import pytest

from repro.core import check_equivalent, generate_residues, isolate
from repro.core.collapse import inline_auxiliaries
from repro.core.equivalence import make_consistent, random_database
from repro.core.periodic import (periodic_applicable, periodic_eliminate,
                                 periodic_prune, periodic_shape)
from repro.datalog import parse_program
from repro.engine import evaluate


def _find(items, sequence):
    for item in items:
        if item.sequence == sequence:
            return item
    raise AssertionError(f"no residue for {sequence}")


class TestApplicability:
    def test_uniform_recursive_sequence(self, ex32):
        assert periodic_shape(ex32.program, "eval", ("r1", "r1")) == "r1"

    def test_exit_terminated_not_periodic(self, ex43):
        assert periodic_shape(ex43.program, "anc", ("r1", "r0")) is None

    def test_mixed_rules_not_periodic(self, ex43):
        assert periodic_shape(ex43.program, "anc", ("r1", "r0")) is None

    def test_length_one_not_periodic(self, ex43):
        assert periodic_shape(ex43.program, "anc", ("r1",)) is None

    def test_elimination_residue_applicable(self, ex32):
        items = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        item = _find(items, ("r1", "r1"))
        assert periodic_applicable(ex32.program, "eval", item)

    def test_pruning_residue_applicable(self, ex43):
        items = generate_residues(ex43.program, "anc", ex43.ic("ic1"))
        item = _find(items, ("r1", "r1", "r1"))
        assert periodic_applicable(ex43.program, "anc", item)

    def test_deep_condition_not_applicable(self, ex41):
        """Example 4.1's condition sits at level 3, outside the level-0
        instance: the depth-class form cannot thread it."""
        items = generate_residues(ex41.program, "triple", ex41.ic("ic1"))
        item = _find(items, ("r2", "r2", "r2", "r2"))
        assert not periodic_applicable(ex41.program, "triple", item)


class TestPeriodicElimination:
    def test_structure(self, ex32):
        items = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        item = _find(items, ("r1", "r1"))
        outcome = periodic_eliminate(ex32.program, "eval", item,
                                     [ex32.ic("ic1")])
        assert outcome.applied, outcome.reason
        program = outcome.program
        assert {"eval__d0", "eval__deep"} <= program.idb_predicates
        deep_edited = program.rule("r1_deep_step")
        assert "expert" not in deep_edited.body_predicates()
        # The warm-up step into deep keeps the expert join.
        warmup = program.rule("r1_d0_step")
        assert "expert" in warmup.body_predicates()
        assert outcome.preserved_preds == {"eval__d0", "eval__deep"}

    def test_equivalence(self, ex32, rng):
        items = generate_residues(ex32.program, "eval", ex32.ic("ic1"))
        item = _find(items, ("r1", "r1"))
        outcome = periodic_eliminate(ex32.program, "eval", item,
                                     [ex32.ic("ic1")])
        dbs = []
        for _ in range(6):
            db = random_database(
                {"super": 3, "works_with": 2, "expert": 2, "field": 2},
                6, 12, rng)
            make_consistent(db, [ex32.ic("ic1")])
            dbs.append(db)
        assert check_equivalent(ex32.program, outcome.program, "eval",
                                dbs) is None

    def test_second_recursive_rule_blocks(self, rng):
        program = parse_program("""
            r0: path(X, Y) :- edge(X, Y).
            r1: path(X, Y) :- path(X, Z), edge(Z, Y).
            r2: path(X, Y) :- path(X, Z), jump(Z, Y).
        """)
        from repro.constraints import ic_from_text
        ic = ic_from_text("edge(A, B), edge(B, C) -> shortcut(A, C).")
        items = generate_residues(program, "path", ic, useful_only=False)
        candidates = [i for i in items if i.sequence == ("r1", "r1")]
        if candidates:
            outcome = periodic_eliminate(program, "path", candidates[0],
                                         [ic])
            assert not outcome.applied


class TestPeriodicPruning:
    def test_structure_and_equivalence(self, ex43, rng):
        items = generate_residues(ex43.program, "anc", ex43.ic("ic1"))
        item = _find(items, ("r1", "r1", "r1"))
        outcome = periodic_prune(ex43.program, "anc", item,
                                 [ex43.ic("ic1")])
        assert outcome.applied, outcome.reason
        program = outcome.program
        assert {"anc__d0", "anc__d1", "anc__deep"} <= \
            program.idb_predicates
        guarded = program.rule("r1_deep_step_c0_n")
        assert any(str(lit) == "Ya > 50" for lit in guarded.body)
        dbs = []
        for _ in range(6):
            db = random_database({"par": 4}, 6, 14, rng,
                                 numeric_columns={"par": [1, 3]})
            make_consistent(db, [ex43.ic("ic1")])
            dbs.append(db)
        assert check_equivalent(ex43.program, outcome.program, "anc",
                                dbs) is None


class TestInlineAuxiliaries:
    def test_collapses_isolation_chain(self, ex32, rng):
        isolation = isolate(ex32.program, "eval", ("r1", "r1"))
        aux = isolation.p_names + isolation.q_names
        collapsed = inline_auxiliaries(isolation.program, aux)
        assert not set(aux) & collapsed.idb_predicates
        dbs = []
        for _ in range(5):
            db = random_database(
                {"super": 3, "works_with": 2, "expert": 2, "field": 2},
                5, 9, rng)
            dbs.append(db)
        assert check_equivalent(ex32.program, collapsed, "eval",
                                dbs) is None

    def test_no_aux_is_identity(self, ex32):
        assert inline_auxiliaries(ex32.program, ()) is ex32.program

    def test_budget_keeps_original(self, ex43):
        isolation = isolate(ex43.program, "anc", ("r1", "r1", "r1"))
        aux = isolation.p_names + isolation.q_names
        unchanged = inline_auxiliaries(isolation.program, aux,
                                       rule_budget=1)
        assert unchanged == isolation.program

    def test_dead_consumers_of_empty_aux_removed(self):
        program = parse_program("""
            r0: p(X) :- e(X).
            r1: p(X) :- aux(X), e(X).
        """, edb_hint=("e",))
        cleaned = inline_auxiliaries(program, ("aux",))
        assert {r.label for r in cleaned} == {"r0"}


class TestPeriodicGroups:
    """Several ICs over one recursive rule compose into one compilation."""

    PROGRAM = """
        r0: reach(X, Y, Wy) :- edge(X, Y, Wy).
        r1: reach(X, Y, Wy) :- reach(X, Z, Wz), edge(Z, Y, Wy), active(Z).
    """
    ICS = """
        ice: edge(A, B, W1), edge(B, C, W2) -> active(B).
        icp: Wy <= 10, edge(Z, Y, Wy), edge(Z2, Z, Wz),
             edge(Z3, Z2, W3) -> .
    """

    def _setup(self):
        from repro.constraints import ics_from_text
        program = parse_program(self.PROGRAM)
        ics = ics_from_text(self.ICS)
        items = []
        for ic in ics:
            items.extend(generate_residues(program, "reach", ic))
        elim = [i for i in items if i.residue.head is not None
                and i.sequence == ("r1", "r1")][0]
        prune = [i for i in items if i.residue.is_null
                 and i.sequence == ("r1", "r1", "r1")][0]
        return program, ics, elim, prune

    def test_group_compiles_both_edits(self):
        from repro.core.periodic import push_periodic_group

        program, ics, elim, prune = self._setup()
        outcome = push_periodic_group(program, "reach", [elim, prune],
                                      ["eliminate", "prune"], list(ics))
        assert outcome.applied, outcome.reason
        rules = {r.label: r for r in outcome.program}
        # Depth-1 extensions drop active; depth >= 2 also guard Wy > 10.
        assert "active" not in \
            rules["r1_d1_step"].body_predicates()
        deep = rules["r1_deep_step_c0_n"]
        assert "active" not in deep.body_predicates()
        assert any(str(lit) == "Wy > 10" for lit in deep.body)
        # Depth-0 extensions are untouched.
        assert "active" in rules["r1_d0_step"].body_predicates()

    def test_group_equivalence(self, rng):
        from repro.core.periodic import push_periodic_group

        program, ics, elim, prune = self._setup()
        outcome = push_periodic_group(program, "reach", [elim, prune],
                                      ["eliminate", "prune"], list(ics))
        dbs = []
        for _ in range(6):
            db = random_database({"edge": 3, "active": 1}, 6, 14, rng,
                                 numeric_columns={"edge": [2]},
                                 max_value=40)
            make_consistent(db, list(ics))
            dbs.append(db)
        assert check_equivalent(program, outcome.program, "reach",
                                dbs) is None

    def test_best_effort_reports_per_item(self):
        from repro.core.periodic import push_periodic_group_best_effort

        program, ics, elim, prune = self._setup()
        outcome, per_item = push_periodic_group_best_effort(
            program, "reach", [elim, prune], ["eliminate", "prune"],
            list(ics))
        assert outcome.applied
        assert [o.applied for o in per_item] == [True, True]

    def test_optimizer_pushes_both_ics_in_one_pass(self, rng):
        from repro.core import SemanticOptimizer
        from repro.constraints import ics_from_text

        program = parse_program(self.PROGRAM)
        ics = ics_from_text(self.ICS)
        report = SemanticOptimizer(program, ics, pred="reach").optimize()
        applied = report.applied_steps
        assert len(applied) == 2
        assert {s.ic_label for s in applied} == {"ice", "icp"}
        dbs = []
        for _ in range(5):
            db = random_database({"edge": 3, "active": 1}, 6, 14, rng,
                                 numeric_columns={"edge": [2]},
                                 max_value=40)
            make_consistent(db, list(ics))
            dbs.append(db)
        assert check_equivalent(program, report.optimized, "reach",
                                dbs) is None
