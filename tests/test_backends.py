"""Conformance suite for the pluggable storage backends.

Every backend — dict, sharded, columnar — must satisfy the same
:class:`~repro.facts.backend.StorageBackend` contract: identical row
semantics, identical live-index maintenance across all three index
families, lazily rebuilt indexes on copies, and a ``(uid, version)``
identity whose version bumps exactly on content changes (the predicate
cache's invalidation rule).  Rows are tuples of ints throughout so the
columnar backend (interned codes only) runs the same cases verbatim.
"""

import random

import pytest

from repro.facts.backend import (ColumnarBackend, DictBackend,
                                 ShardedBackend, StorageBackend)

ROWS = [(1, 2), (2, 3), (2, 4), (5, 2)]

BACKENDS = [
    ("dict", lambda rows=None: DictBackend(rows)),
    ("sharded", lambda rows=None: ShardedBackend(
        4, 0, rows=list(rows) if rows is not None else None)),
    ("columnar", lambda rows=None: ColumnarBackend(
        2, rows=list(rows) if rows is not None else None)),
]


@pytest.fixture(params=BACKENDS, ids=[name for name, _ in BACKENDS])
def make(request):
    return request.param[1]


class TestRowContract:
    def test_satisfies_protocol(self, make):
        assert isinstance(make(), StorageBackend)

    def test_insert_contains_len_iter(self, make):
        backend = make()
        assert backend.insert((1, 2))
        assert not backend.insert((1, 2))
        assert backend.insert((2, 3))
        assert (1, 2) in backend and (9, 9) not in backend
        assert len(backend) == 2
        assert sorted(backend) == [(1, 2), (2, 3)]

    def test_add_new_keeps_only_fresh_rows_in_order(self, make):
        backend = make([(1, 2)])
        new = backend.add_new([(1, 2), (2, 3), (2, 3), (5, 2)])
        assert new == [(2, 3), (5, 2)]
        assert len(backend) == 3

    def test_merge_new_screens_duplicates(self, make):
        backend = make([(1, 2), (2, 3)])
        new = backend.merge_new(ROWS)
        assert sorted(new) == [(2, 4), (5, 2)]
        assert sorted(backend) == sorted(ROWS)
        assert backend.merge_new(ROWS) == []

    def test_merge_trusts_caller_on_absence(self, make):
        backend = make([(1, 2)])
        backend.merge([(2, 3), (2, 4)])
        assert sorted(backend) == [(1, 2), (2, 3), (2, 4)]

    def test_remove(self, make):
        backend = make(ROWS)
        assert backend.remove((2, 3))
        assert not backend.remove((2, 3))
        assert (2, 3) not in backend
        assert len(backend) == len(ROWS) - 1

    def test_clear(self, make):
        backend = make(ROWS)
        backend.index_for((0,))
        backend.clear()
        assert len(backend) == 0
        assert backend.index_for((0,)) == {}


class TestIndexFamilies:
    def test_index_for_groups_rows(self, make):
        backend = make(ROWS)
        index = backend.index_for((0,))
        assert sorted(index[(2,)]) == [(2, 3), (2, 4)]
        both = backend.index_for((0, 1))
        assert both[(5, 2)] == [(5, 2)]

    def test_code_index_keys_are_bare_values(self, make):
        backend = make(ROWS)
        index = backend.code_index_for(0)
        assert sorted(index[2]) == [(2, 3), (2, 4)]
        assert (2,) not in index

    def test_projection_index_is_a_multiset(self, make):
        backend = make([(1, 7), (2, 7), (2, 7)])
        # Rows dedup, but two distinct rows projecting the same value
        # must keep both entries — batch row counts depend on it.
        backend.insert((3, 7))
        proj = backend.projection_index(1, 1)
        assert sorted(proj[7]) == [7, 7, 7]
        proj = backend.projection_index(0, 1)
        assert proj[2] == [7]

    @pytest.mark.parametrize("mutate", ["insert", "add_new", "merge_new",
                                        "merge"])
    def test_live_indexes_track_inserts(self, make, mutate):
        backend = make(ROWS)
        plain = backend.index_for((0,))
        bare = backend.code_index_for(0)
        proj = backend.projection_index(0, 1)
        row = (2, 9)
        if mutate == "insert":
            backend.insert(row)
        elif mutate == "merge":
            backend.merge([row])
        else:
            getattr(backend, mutate)([row])
        assert (2, 9) in plain[(2,)]
        assert (2, 9) in bare[2]
        assert 9 in proj[2]

    def test_live_indexes_track_removals(self, make):
        backend = make(ROWS)
        plain = backend.index_for((0,))
        bare = backend.code_index_for(0)
        proj = backend.projection_index(0, 1)
        backend.remove((2, 3))
        assert plain[(2,)] == [(2, 4)]
        assert bare[2] == [(2, 4)]
        assert proj[2] == [4]
        backend.remove((2, 4))
        assert (2,) not in plain and 2 not in bare and 2 not in proj


class TestCopyIdentity:
    def test_copy_is_independent(self, make):
        backend = make(ROWS)
        clone = backend.copy()
        clone.insert((9, 9))
        backend.remove((1, 2))
        assert (9, 9) not in backend
        assert (1, 2) in clone
        assert sorted(clone) == sorted(ROWS + [(9, 9)])

    def test_copy_rebuilds_indexes_lazily(self, make):
        # Regression (sharded-fixpoint PR): a copy must NOT share the
        # source's live index dicts — after mutating the copy, probes
        # on it reflect the mutation while the source's index is
        # untouched.
        backend = make(ROWS)
        source_index = backend.index_for((0,))
        clone = backend.copy()
        clone.insert((2, 9))
        clone_index = clone.index_for((0,))
        assert clone_index is not source_index
        assert sorted(clone_index[(2,)]) == [(2, 3), (2, 4), (2, 9)]
        assert sorted(source_index[(2,)]) == [(2, 3), (2, 4)]

    def test_copy_gets_fresh_cache_identity(self, make):
        backend = make(ROWS)
        backend.insert((7, 7))
        clone = backend.copy()
        assert clone.uid != backend.uid
        assert clone.version == 0

    def test_version_bumps_on_content_change_only(self, make):
        backend = make()
        v0 = backend.version
        backend.index_for((0,))         # pure index build: no change
        backend.code_index_for(1)
        assert backend.version == v0
        backend.insert((1, 2))
        v1 = backend.version
        assert v1 > v0
        backend.insert((1, 2))          # duplicate: content unchanged
        assert backend.version == v1
        backend.merge_new([(1, 2)])     # all-duplicate bulk: unchanged
        assert backend.version == v1
        backend.remove((1, 2))
        assert backend.version > v1


class TestShardedSpecifics:
    def brute_imbalance(self, backend):
        total = len(backend.rows)
        if not total:
            return 1.0
        largest = max((len(b) for b in backend.shard_lists), default=0)
        return largest / (total / backend.shard_count)

    def test_imbalance_counter_matches_recompute(self):
        rng = random.Random(11)
        backend = ShardedBackend(4)
        live = []
        for _ in range(400):
            action = rng.random()
            if action < 0.55 or not live:
                row = (rng.randrange(12), rng.randrange(12))
                if backend.insert(row):
                    live.append(row)
            elif action < 0.85:
                row = live.pop(rng.randrange(len(live)))
                assert backend.remove(row)
            else:
                backend.rebalance(rng.randrange(2))
            assert backend.imbalance() == pytest.approx(
                self.brute_imbalance(backend))

    def test_rebalance_noop_on_same_key(self):
        backend = ShardedBackend(4, 0, rows=ROWS)
        assert not backend.rebalance(0)
        assert backend.rebalances == 0
        assert backend.rebalance(1)
        assert backend.rebalances == 1
        assert sorted(backend) == sorted(ROWS)


class TestColumnarSpecifics:
    def test_columns_are_lazy_until_first_read(self):
        backend = ColumnarBackend(2, rows=ROWS)
        assert backend._columns is None
        cols = backend.columns()
        assert backend._columns is not None
        assert sorted(zip(cols[0], cols[1])) == sorted(ROWS)

    def test_columns_extend_incrementally_once_materialized(self):
        backend = ColumnarBackend(2, rows=ROWS)
        cols = backend.columns()
        backend.insert((8, 9))
        assert backend.columns() is cols
        assert sorted(zip(cols[0], cols[1])) == sorted(ROWS + [(8, 9)])

    def test_remove_marks_dirty_and_rebuilds(self):
        backend = ColumnarBackend(2, rows=ROWS)
        backend.columns()
        backend.remove((2, 3))
        cols = backend.columns()
        assert sorted(zip(cols[0], cols[1])) == sorted(
            row for row in ROWS if row != (2, 3))

    def test_id_index_row_runs(self):
        backend = ColumnarBackend(2, rows=ROWS)
        index = backend.id_index_for(0)
        cols = backend.columns()
        for code, ids in index.items():
            assert all(cols[0][i] == code for i in ids)
        assert sorted(len(ids) for ids in index.values()) == [1, 1, 2]
        backend.insert((2, 9))
        assert len(backend.id_index_for(0)[2]) == 3

    def test_copy_is_copy_on_write(self):
        backend = ColumnarBackend(2, rows=ROWS)
        cols = backend.columns()
        clone = backend.copy()
        assert clone.rows is backend.rows        # shared until a write
        clone.insert((8, 9))
        assert clone.rows is not backend.rows    # writer privatized
        assert (8, 9) not in backend
        assert backend.columns() is cols
        assert sorted(zip(*clone.columns())) == sorted(ROWS + [(8, 9)])

    def test_source_write_after_snapshot_detaches(self):
        backend = ColumnarBackend(2, rows=ROWS)
        backend.columns()
        clone = backend.copy()
        backend.insert((8, 9))
        assert (8, 9) not in clone
        assert sorted(zip(*clone.columns())) == sorted(ROWS)
        assert sorted(zip(*backend.columns())) == sorted(ROWS + [(8, 9)])

    def test_arity_zero(self):
        backend = ColumnarBackend(0)
        backend.insert(())
        assert backend.columns() == []
        assert len(backend) == 1
