"""Tests for the chase-based containment checker (the soundness guard)."""

import pytest

from repro.constraints import ic_from_text, ics_from_text
from repro.core.containment import (ChaseInstance, chase, contained_under,
                                    elimination_is_sound, entails, freeze)
from repro.core.sequences import unfold
from repro.datalog.atoms import atom, comparison
from repro.datalog.parser import parse_literal
from repro.datalog.terms import FreshVariableSupply


class TestEntails:
    def test_syntactic(self):
        assert entails([parse_literal("X > 5")], parse_literal("X > 5"))

    def test_converse_orientation(self):
        assert entails([parse_literal("X > 5")], parse_literal("5 < X"))

    def test_ground(self):
        assert entails([], parse_literal("3 < 5"))
        assert not entails([], parse_literal("5 < 3"))

    def test_equality_rewriting(self):
        assumptions = [comparison("X", "=", "executive"),
                       parse_literal("Y > 3")]
        assert entails(assumptions, comparison("X", "=", "executive"))

    def test_equality_chains_to_ground(self):
        assumptions = [comparison("X", "=", 7)]
        assert entails(assumptions, parse_literal("X > 5"))
        assert not entails(assumptions, parse_literal("X > 9"))

    def test_reflexive_equality(self):
        assert entails([], comparison("X", "=", "X"))

    def test_incomplete_but_sound(self):
        # X > 5 entails X > 4 semantically, but the checker is
        # deliberately syntactic: it must never claim entailment wrongly.
        assert not entails([parse_literal("X > 5")],
                           parse_literal("X > 4"))


class TestChase:
    def test_fires_fact_ic(self):
        ic = ic_from_text("boss(E, B) -> experienced(B).")
        instance, supply = freeze((atom("boss", "X", "Y"),))
        chase(instance, [ic], supply)
        assert atom("experienced", "Y") in instance.atoms

    def test_respects_evaluable_premise(self):
        ic = ic_from_text("boss(E, B, R), R = executive -> exp(B).")
        instance, supply = freeze((atom("boss", "X", "Y", "R"),))
        chase(instance, [ic], supply)
        assert not any(a.pred == "exp" for a in instance.atoms)
        # With the premise assumed, the IC fires.
        instance2, supply2 = freeze(
            (atom("boss", "X", "Y", "R"),),
            [comparison("R", "=", "executive")])
        chase(instance2, [ic], supply2)
        assert any(a.pred == "exp" for a in instance2.atoms)

    def test_existential_head_invents_null(self):
        ic = ic_from_text("emp(E) -> boss(E, B).")
        instance, supply = freeze((atom("emp", "X"),))
        chase(instance, [ic], supply)
        bosses = [a for a in instance.atoms if a.pred == "boss"]
        assert len(bosses) == 1
        assert bosses[0].args[0].name == "X"

    def test_restricted_step_does_not_refire(self):
        ic = ic_from_text("emp(E) -> boss(E, B).")
        instance, supply = freeze((atom("emp", "X"),
                                   atom("boss", "X", "Y")))
        chase(instance, [ic], supply)
        assert len([a for a in instance.atoms if a.pred == "boss"]) == 1

    def test_denial_marks_inconsistent(self):
        ic = ic_from_text("p(X), X > 5 -> .")
        instance, supply = freeze((atom("p", "X"),),
                                  [parse_literal("X > 5")])
        chase(instance, [ic], supply)
        assert instance.inconsistent

    def test_transitive_closure_ic_terminates(self):
        ic = ic_from_text("ww(A, B), ww(B, C) -> ww(A, C).")
        instance, supply = freeze(
            (atom("ww", "X", "Y"), atom("ww", "Y", "Z"),
             atom("ww", "Z", "W")))
        chase(instance, [ic], supply)
        assert atom("ww", "X", "W") in instance.atoms


class TestEliminationGuard:
    def test_example_4_2_elimination_sound(self, ex32):
        clause = unfold(ex32.program, "eval", ("r1", "r1"))
        literals = clause.literals()
        target = literals.index(atom("expert", "P", "F"))
        assert elimination_is_sound(clause.head, literals, target,
                                    [ex32.ic("ic1")])

    def test_inner_expert_not_eliminable(self, ex32):
        clause = unfold(ex32.program, "eval", ("r1", "r1"))
        literals = clause.literals()
        inner = [i for i, lit in enumerate(literals)
                 if getattr(lit, "pred", None) == "expert"][1]
        assert not elimination_is_sound(clause.head, literals, inner,
                                        [ex32.ic("ic1")])

    def test_nothing_eliminable_without_ics(self, ex32):
        clause = unfold(ex32.program, "eval", ("r1", "r1"))
        literals = clause.literals()
        for index, lit in enumerate(literals):
            if getattr(lit, "pred", None) in ("works_with", "expert"):
                assert not elimination_is_sound(clause.head, literals,
                                                index, [])

    def test_duplicate_atom_always_eliminable(self):
        head = atom("p", "X")
        body = (atom("a", "X", "Y"), atom("a", "X", "Y"))
        assert elimination_is_sound(head, body, 0, [])

    def test_conditional_elimination_uses_assumptions(self, ex41):
        clause = unfold(ex41.program, "triple",
                        ("r2", "r2", "r2", "r2"))
        literals = clause.literals()
        target = literals.index(atom("experienced", "U"))
        condition_var = [lit for lit in literals
                         if getattr(lit, "pred", None) == "boss"][-1]
        rank = condition_var.args[2]
        condition = (comparison(rank, "=", "executive"),)
        assert elimination_is_sound(clause.head, literals, target,
                                    [ex41.ic("ic1")],
                                    assumptions=condition)
        assert not elimination_is_sound(clause.head, literals, target,
                                        [ex41.ic("ic1")])

    def test_head_variable_atom_not_eliminable(self, ex21):
        """Example 2.1's d-atom binds the output X6: not eliminable."""
        clause = unfold(ex21.program, "p", ("r0", "r0", "r0", "r0"))
        literals = clause.literals()
        target = literals.index(atom("d", "Y5", "X6"))
        assert not elimination_is_sound(clause.head, literals, target,
                                        [ex21.ic("ic")])


class TestContainedUnder:
    def test_introduction_direction(self, ex32):
        """Adding the ic2-implied doctoral atom preserves answers."""
        r2 = ex32.program.rule("r2")
        literals = r2.body
        larger = literals + (atom("doctoral", "S"),)
        condition = [parse_literal("M > 10000")]
        assert contained_under(r2.head, literals, larger,
                               [ex32.ic("ic2")], assumptions=condition)
        assert not contained_under(r2.head, literals, larger,
                                   [ex32.ic("ic2")])

    def test_inconsistent_smaller_side_is_contained(self):
        ic = ic_from_text("p(X), X > 5 -> .")
        head = atom("q", "X")
        smaller = (atom("p", "X"), parse_literal("X > 5"))
        larger = smaller + (atom("ghost", "X"),)
        assert contained_under(head, smaller, larger, [ic])
