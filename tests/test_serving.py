"""The concurrent serving tier, tested deterministically.

Covers the single-threaded contracts of every new piece — MVCC
snapshots and staleness bounds, retry/backoff, the circuit breaker,
the coalescing write pipeline and its failure ladder, the aggregating
``refresh_all`` sweep, and the atomic-materialization regression — by
driving ``process_once`` and injected chaos plans directly, with no
threads and no wall-clock sleeps.  The actual multi-threaded mixed
workload lives in ``test_serving_concurrency.py``.
"""

import random

import pytest

from repro.datalog import parse_program
from repro.engine.seminaive import seminaive_evaluate
from repro.errors import BudgetExceededError, ServingUnavailable
from repro.facts import Database
from repro.facts.changelog import Changeset, VersionedDatabase
from repro.runtime import ChaosError
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosPlan
from repro.runtime.retry import CircuitBreaker, HealthState, RetryPolicy
from repro.serving import (Server, Snapshot, StalenessBound,
                           ThreadedServer, WritePipeline,
                           relation_fingerprint)

TC = """
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
"""

NONREC = """
grand(X, Z) :- parent(X, Y), parent(Y, Z).
"""


def _edge_db(*edges):
    db = Database()
    db.ensure("edge", 2)
    for src, dst in edges:
        db.add_fact("edge", src, dst)
    return db


def _chain_db(n=5):
    return _edge_db(*[(f"n{i}", f"n{i + 1}") for i in range(n)])


def _no_sleep(_):
    pass


# -- snapshots and staleness bounds ------------------------------------------

def test_snapshot_is_immune_to_live_mutation():
    program = parse_program(TC)
    server = Server(_chain_db(3))
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    snapshot = view.snapshot
    assert snapshot is not None and snapshot.version == 0
    before = snapshot.query("reach(n0, X)")

    server.apply(Changeset.from_text("+edge(n3, n9). -edge(n0, n1)."))
    view.refresh()
    # The pinned snapshot still answers as of version 0.
    assert snapshot.query("reach(n0, X)") == before
    assert view.snapshot is not snapshot
    assert view.snapshot.version == 1
    assert ("n9",) in view.snapshot.query("reach(n3, X)")


def test_snapshot_fingerprint_matches_state_at_version():
    program = parse_program(TC)
    server = Server(_chain_db(4))
    view = server.view(program, publish_snapshots=True)
    pinned = []
    for text in ("+edge(n4, n5).", "-edge(n1, n2).", "+edge(n0, n4)."):
        view.refresh()
        pinned.append(view.snapshot)
        server.apply(Changeset.from_text(text))
    view.refresh()
    pinned.append(view.snapshot)
    for snapshot in pinned:
        historical = server.source.state_at(snapshot.version)
        expected = seminaive_evaluate(program, historical)
        assert snapshot.fingerprint() == relation_fingerprint(expected)


def test_staleness_bound_axes():
    program = parse_program(TC)
    snapshot = Snapshot(program, version=3, edb=Database(),
                        idb=Database())
    assert StalenessBound().allows(snapshot, source_version=1000)
    assert not StalenessBound().allows(None, source_version=0)
    assert StalenessBound(max_lag=2).allows(snapshot, 5)
    assert not StalenessBound(max_lag=1).allows(snapshot, 5)
    assert StalenessBound(max_lag=0).allows(snapshot, 3)
    assert StalenessBound(max_age_s=60.0).allows(snapshot, 3)
    snapshot.created_monotonic -= 120.0
    assert not StalenessBound(max_age_s=60.0).allows(snapshot, 3)
    with pytest.raises(ValueError):
        StalenessBound(max_lag=-1)
    with pytest.raises(ValueError):
        StalenessBound(max_age_s=-0.5)


# -- retry policy ------------------------------------------------------------

def test_retry_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                         multiplier=2.0, max_delay_s=0.3, jitter=0.0)
    assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]


def test_retry_jitter_is_bounded_and_reproducible():
    make = lambda: RetryPolicy(max_attempts=4, base_delay_s=0.1,
                               jitter=0.5, rng=random.Random(42))
    first, second = list(make().delays()), list(make().delays())
    assert first == second  # seeded rng => identical schedule
    for raw, jittered in zip([0.1, 0.2, 0.4], first):
        assert raw * 0.5 <= jittered <= raw


def test_retry_call_recovers_then_reraises():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ValueError("transient")
        return "ok"

    policy = RetryPolicy(max_attempts=3, jitter=0.0)
    failures = []
    assert policy.call(flaky, sleep=_no_sleep,
                       on_failure=lambda n, e: failures.append(n)) == "ok"
    assert len(calls) == 3 and failures == [1, 2]

    calls.clear()
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=2, jitter=0.0).call(
            lambda: (_ for _ in ()).throw(ValueError("always")),
            sleep=_no_sleep)


def test_retry_only_retries_matching_errors():
    def boom():
        raise KeyError("not transient")

    with pytest.raises(KeyError):
        RetryPolicy(max_attempts=5, jitter=0.0).call(
            boom, retry_on=(ValueError,), sleep=_no_sleep)


# -- circuit breaker ---------------------------------------------------------

def test_breaker_automaton_closed_open_halfopen():
    clock = [0.0]
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                             clock=lambda: clock[0])
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.retry_after_s() == pytest.approx(10.0)

    clock[0] = 11.0  # cooldown elapsed: exactly one probe
    assert breaker.state == "half-open"
    assert breaker.allow()
    assert not breaker.allow()  # concurrent caller is shed

    breaker.record_failure()  # failed probe re-opens for a new cooldown
    assert breaker.state == "open"
    clock[0] = 22.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow()
    assert breaker.times_opened == 2


# -- the write pipeline ------------------------------------------------------

def _pipeline(db=None, **kwargs):
    server = Server(db if db is not None else _chain_db(4))
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, jitter=0.0))
    kwargs.setdefault("sleep", _no_sleep)
    return server, WritePipeline(server, **kwargs)


def test_pipeline_coalesces_queue_into_one_batch():
    program = parse_program(TC)
    server, pipeline = _pipeline()
    server.view(program, publish_snapshots=True)
    pipeline.submit(Changeset.from_text("+edge(n4, n5)."))
    pipeline.submit(Changeset.from_text("+edge(n5, n6)."))
    pipeline.submit(Changeset.from_text("-edge(n4, n5)."))
    assert pipeline.process_once()
    assert pipeline.drained()
    assert pipeline.batches == 1
    assert pipeline.changesets_coalesced == 3
    assert pipeline.applied_versions == 1  # one net apply, one version
    view = server.view(program)
    assert view.version == server.version == 1
    # The insert+delete pair cancelled; only n5->n6 landed.
    assert ("n6",) in view.query("reach(n5, X)")
    assert not server.source.db.facts("edge") & {("n4", "n5")}


def test_pipeline_failed_batch_is_carried_not_dropped():
    program = parse_program(TC)
    server, pipeline = _pipeline()
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    pipeline.submit(Changeset.from_text("+edge(n4, n5)."))

    plan = ChaosPlan()
    plan.fail_stage("serving:apply", repeats=1)  # both attempts fail
    with plan.active():
        assert pipeline.process_once()
    assert not pipeline.drained()  # the write is parked, not lost
    assert pipeline.health == HealthState.DEGRADED
    assert isinstance(pipeline.last_error, ChaosError)
    assert server.version == 0

    assert pipeline.process_once()  # fault exhausted: carry lands
    assert pipeline.drained()
    assert server.version == 1
    assert pipeline.health == HealthState.HEALTHY
    assert ("n5",) in server.view(program).query("reach(n0, X)")


def test_pipeline_retry_applies_changeset_exactly_once():
    program = parse_program(TC)
    server, pipeline = _pipeline(
        retry=RetryPolicy(max_attempts=3, jitter=0.0))
    server.view(program, publish_snapshots=True).refresh()
    pipeline.submit(Changeset.from_text("+edge(n4, n5)."))
    plan = ChaosPlan()
    plan.fail_stage("serving:refresh", repeats=0)  # first attempt only
    with plan.active():
        assert pipeline.process_once()
    # Apply landed on attempt 1; the retry must not re-apply it.
    assert server.version == 1
    assert pipeline.applied_versions == 1
    assert pipeline.drained()
    assert pipeline.health == HealthState.HEALTHY
    assert pipeline.refresh_failures == 1


def test_pipeline_rebuild_ladder_then_circuit_opens():
    program = parse_program(TC)
    server, pipeline = _pipeline(
        retry=RetryPolicy(max_attempts=1, jitter=0.0),
        breaker=CircuitBreaker(failure_threshold=3, cooldown_s=60.0),
        rebuild_after=2)
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    last_good = view.snapshot

    plan = ChaosPlan()
    plan.fail_stage("serving:refresh")       # incremental path fails
    plan.fail_stage("serving:materialize")   # ... and so do rebuilds
    with plan.active():
        pipeline.submit(Changeset.from_text("+edge(n4, n5)."))
        assert pipeline.process_once()
        assert pipeline.health == HealthState.DEGRADED
        assert pipeline.process_once()
        # Second consecutive failure: views invalidated for rebuild.
        assert pipeline.full_rebuilds_forced == 1
        assert not view.valid
        assert pipeline.process_once()
        assert pipeline.breaker.state == "open"
        assert pipeline.health == HealthState.UNAVAILABLE
        # Open circuit rejects both new writes and processing.
        with pytest.raises(ServingUnavailable) as exc:
            pipeline.submit(Changeset.from_text("+edge(n5, n6)."))
        assert exc.value.reason == "circuit-open"
        assert exc.value.retry_after_s is not None
        assert not pipeline.process_once()
    # Readers kept the last-good snapshot through the whole outage.
    assert view.snapshot is last_good


def test_pipeline_recovers_after_cooldown_probe():
    clock = [0.0]
    program = parse_program(TC)
    server, pipeline = _pipeline(
        retry=RetryPolicy(max_attempts=1, jitter=0.0),
        breaker=CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                               clock=lambda: clock[0]),
        rebuild_after=10)
    server.view(program, publish_snapshots=True).refresh()
    plan = ChaosPlan()
    plan.fail_stage("serving:refresh", repeats=0)
    pipeline.submit(Changeset.from_text("+edge(n4, n5)."))
    with plan.active():
        assert pipeline.process_once()
    assert pipeline.breaker.state == "open"
    clock[0] = 6.0  # cooldown over: the probe batch heals everything
    assert pipeline.process_once()
    assert pipeline.breaker.state == "closed"
    assert pipeline.health == HealthState.HEALTHY
    assert pipeline.drained()
    view = server.view(program)
    assert view.version == server.version == 1


def test_pipeline_backpressure_rejects_with_typed_error():
    _, pipeline = _pipeline(max_queue=2)
    pipeline.submit(Changeset.from_text("+edge(a, b)."))
    pipeline.submit(Changeset.from_text("+edge(b, c)."))
    with pytest.raises(ServingUnavailable) as exc:
        pipeline.submit(Changeset.from_text("+edge(c, d)."),
                        timeout_s=0.0)
    assert exc.value.reason == "backpressure"
    assert pipeline.rejected == 1


# -- refresh_all aggregation (satellite: no abort-on-first-failure) ----------

def test_refresh_all_continues_past_failing_view():
    server = Server(_chain_db(4))
    first = server.view(parse_program(TC))
    second = server.view(parse_program(NONREC))
    assert server.refresh_all().ok  # both materialized at v0
    server.apply(Changeset.from_text("+edge(n4, n5). +parent(a, b)."))

    plan = ChaosPlan()
    plan.fail_stage("serving:refresh", repeats=0)
    with plan.active():
        report = server.refresh_all()
    # Registration order: the TC view hits the fault, NONREC succeeds.
    assert not report.ok
    assert list(report.errors) == [first.key[0]]
    assert isinstance(report.errors[first.key[0]], ChaosError)
    assert report.modes == {second.key[0]: "incremental"}
    assert second.valid and second.version == 1
    assert not first.valid
    with pytest.raises(ChaosError):
        report.raise_first()
    assert "FAILED ChaosError" in report.summary()

    # The failed view self-heals on the next (clean) sweep.
    report = server.refresh_all()
    assert report.ok and first.valid
    assert first.version == second.version == 1


# -- atomic materialization (satellite: never half-built) --------------------

def test_materialize_fault_leaves_last_good_snapshot_intact():
    """A fault during the self-healing rebuild must leave the view
    cleanly invalidated — previous snapshot serving, no half-built
    state — at *both* failed refresh attempts, and the third attempt
    must fully recover."""
    program = parse_program(TC)
    server = Server(_chain_db(3))
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    last_good = view.snapshot
    good_rows = last_good.query("reach(n0, X)")
    server.apply(Changeset.from_text("+edge(n3, n4)."))

    plan = ChaosPlan()
    plan.fail_stage("serving:refresh", repeats=0)
    plan.fail_stage("serving:materialize", repeats=0)
    with plan.active():
        # Attempt 1: the incremental path faults mid-maintenance.
        with pytest.raises(ChaosError):
            view.refresh()
        assert not view.valid
        assert view.version == 0
        assert view.snapshot is last_good
        assert last_good.query("reach(n0, X)") == good_rows
        # Attempt 2: the self-healing full rebuild faults too.
        with pytest.raises(ChaosError):
            view.refresh()
        assert not view.valid
        assert view.version == 0
        assert view.snapshot is last_good
        assert last_good.query("reach(n0, X)") == good_rows
        # Attempt 3: both faults are exhausted; full recovery.
        assert view.refresh() == "full"
    assert view.valid and view.version == 1
    assert view.snapshot is not last_good
    assert view.snapshot.version == 1
    expected = seminaive_evaluate(program, server.source.db)
    assert view.fingerprint() == relation_fingerprint(expected)
    assert ("n4",) in view.snapshot.query("reach(n0, X)")


def test_snapshot_swap_fault_keeps_previous_snapshot():
    program = parse_program(TC)
    server = Server(_chain_db(3))
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    last_good = view.snapshot
    server.apply(Changeset.from_text("+edge(n3, n4)."))

    plan = ChaosPlan()
    plan.fail_stage("serving:snapshot-swap", repeats=0)
    with plan.active():
        with pytest.raises(ChaosError):
            view.refresh()
        assert view.snapshot is last_good
        # The IDB itself is current and valid; only publication failed.
        # The next refresh is a no-op ("fresh") that re-runs the swap.
        assert view.refresh() == "fresh"
    assert view.snapshot is not last_good
    assert view.snapshot.version == 1


# -- changeset algebra edge cases (satellite) --------------------------------

def test_compose_insert_delete_insert_across_three_changesets():
    insert = Changeset.from_text("+edge(a, b).")
    delete = Changeset.from_text("-edge(a, b).")
    again = Changeset.from_text("+edge(a, b).")

    net = insert.compose(delete).compose(again)
    assert net.inserts.get("edge") == {("a", "b")}
    assert not any(net.deletes.values())

    # Composition order of evaluation doesn't matter for the net.
    alt = insert.compose(delete.compose(again))
    assert alt.inserts.get("edge") == net.inserts.get("edge")

    # Against a real database, composed == sequential.
    composed = VersionedDatabase(Database())
    composed.apply(net)
    sequential = VersionedDatabase(Database())
    for step in (insert, delete, again):
        sequential.apply(step)
    assert (relation_fingerprint(composed.db)
            == relation_fingerprint(sequential.db))

    # Ending on the delete instead: the fact nets out entirely.
    gone = insert.compose(delete)
    assert not any(gone.inserts.values())


def test_compose_with_empty_changeset_is_identity():
    empty = Changeset()
    batch = Changeset.from_text("+edge(a, b). -edge(c, d).")
    for net in (batch.compose(empty), empty.compose(batch)):
        assert net.inserts.get("edge") == {("a", "b")}
        assert net.deletes.get("edge") == {("c", "d")}
    assert empty.compose(empty).is_empty


def test_normalized_drops_delete_of_simultaneous_insert():
    both = Changeset(inserts={"edge": {("a", "b"), ("c", "d")}},
                     deletes={"edge": {("a", "b")}, "other": set()})
    norm = both.normalized()
    assert norm.inserts["edge"] == {("a", "b"), ("c", "d")}
    assert "edge" not in norm.deletes  # net effect: the row is present
    assert "other" not in norm.deletes  # empty buckets dropped


# -- serving under budget exhaustion -----------------------------------------

def test_refresh_all_survives_budget_exhaustion_mid_refresh():
    program = parse_program(TC)
    server = Server(_chain_db(30))
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    last_good = view.snapshot
    server.apply(Changeset.from_text("+edge(n30, n31)."))

    report = server.refresh_all(Budget(max_derivations=1))
    assert not report.ok
    assert isinstance(report.errors[view.key[0]], BudgetExceededError)
    assert not view.valid
    assert view.snapshot is last_good  # readers never see the wreck

    report = server.refresh_all()  # unbudgeted sweep: full rebuild
    assert report.ok and report.modes[view.key[0]] == "full"
    expected = seminaive_evaluate(program, server.source.db)
    assert view.fingerprint() == relation_fingerprint(expected)


def test_pipeline_budget_failures_climb_the_recovery_ladder():
    program = parse_program(TC)
    server, pipeline = _pipeline(
        db=_chain_db(30),
        retry=RetryPolicy(max_attempts=1, jitter=0.0),
        rebuild_after=2)
    view = server.view(program, publish_snapshots=True)
    view.refresh()
    server.apply(Changeset.from_text("+edge(n30, n31)."))

    # The first two refresh sweeps run under an impossible budget —
    # a BudgetExceededError mid-refresh, twice in a row — which must
    # walk the ladder to a forced full rebuild, then heal cleanly.
    real_refresh_all = server.refresh_all
    budgeted = [True, True]

    def choked_refresh_all(budget=None):
        if budgeted:
            budgeted.pop()
            return real_refresh_all(Budget(max_derivations=1))
        return real_refresh_all(budget)

    server.refresh_all = choked_refresh_all
    pipeline.submit(Changeset.from_text("+edge(n31, n32)."))
    assert pipeline.process_once()
    assert pipeline.health == HealthState.DEGRADED
    assert isinstance(pipeline.last_error, BudgetExceededError)
    assert pipeline.process_once()  # second budget failure in a row
    assert pipeline.health == HealthState.REBUILDING
    assert not view.valid
    assert pipeline.full_rebuilds_forced == 1
    assert pipeline.process_once()  # clean sweep: full rebuild heals
    assert pipeline.health == HealthState.HEALTHY
    assert pipeline.drained()
    expected = seminaive_evaluate(program, server.source.db)
    assert view.fingerprint() == relation_fingerprint(expected)


# -- the threaded front-end, inline (writer-less) mode -----------------------

def test_threaded_server_inline_reads_and_updates():
    program = parse_program(TC)
    server = ThreadedServer(db=_chain_db(3))
    result = server.read(program, "reach(n0, X)")
    assert ("n3",) in result.rows
    assert result.version == 0 and not result.stale

    server.update(Changeset.from_text("+edge(n3, n9)."))
    fresh = server.read(program, "reach(n0, X)",
                        staleness=StalenessBound(max_lag=0))
    assert ("n9",) in fresh.rows
    assert fresh.version == fresh.source_version == 1
    assert fresh.lag == 0


def test_threaded_server_stopped_rejects_reads_and_writes():
    program = parse_program(TC)
    server = ThreadedServer(db=_chain_db(2))
    server.read(program, "reach(n0, X)")
    server.stop()
    with pytest.raises(ServingUnavailable) as exc:
        server.read(program, "reach(n0, X)")
    assert exc.value.reason == "stopped"
    with pytest.raises(ServingUnavailable) as exc:
        server.update(Changeset.from_text("+edge(a, b)."))
    assert exc.value.reason == "stopped"


def test_threaded_server_deadline_when_bound_unreachable():
    program = parse_program(TC)
    server = ThreadedServer(db=_chain_db(3))
    server.read(program, "reach(n0, X)")  # publish v0
    # Make every refresh path fail; a max_lag=0 read then cannot be
    # satisfied and must come back as a typed deadline failure (the
    # last-good snapshot is still v0, the source at v1).
    server.update(Changeset.from_text("+edge(n3, n9)."))
    plan = ChaosPlan()
    plan.fail_stage("serving:refresh")
    plan.fail_stage("serving:materialize")
    with plan.active():
        stale = server.read(program, "reach(n0, X)")  # default bound
        assert stale.version == 1  # inline update already refreshed
        server.pipeline.server.apply(
            Changeset.from_text("+edge(n9, n10)."))
        with pytest.raises(ServingUnavailable) as exc:
            server.read(program, "reach(n0, X)", deadline_s=0.05,
                        staleness=StalenessBound(max_lag=0))
    assert exc.value.reason == "deadline"


# -- the serving benchmark gate ----------------------------------------------

def test_serving_bench_report_and_gate():
    from repro.bench.serving_bench import (regression_failures,
                                           run_serving_benchmark)

    report = run_serving_benchmark(duration_s=0.3, readers=4, seed=7)
    assert regression_failures(report) == []
    modes = {mode["mode"] for mode in report["modes"]}
    assert modes == {"steady", "chaos"}
    for mode in report["modes"]:
        assert mode["reads"] > 0
        assert mode["fingerprints_agree"]
        assert mode["unexpected_errors"] == []
        assert mode["latency_p50_ms"] <= mode["latency_p99_ms"]
    chaos_mode = report["modes"][1]
    assert chaos_mode["faults_fired"] > 0
    assert set(report["summary"]) >= {
        "steady_qps", "steady_p99_ms", "chaos_qps", "chaos_p99_ms"}


def test_serving_bench_gate_rejects_bad_reports():
    from repro.bench.serving_bench import regression_failures

    failures = regression_failures({"modes": [
        {"mode": "steady", "reads": 0, "qps": 0,
         "unexpected_errors": ["reader: KeyError: boom"],
         "fingerprints_agree": False,
         "expected_errors": {"deadline": 3},
         "final_health": "healthy"},
    ]})
    joined = "\n".join(failures)
    assert "no reads" in joined
    assert "unexpected error" in joined
    assert "disagrees" in joined
    assert "without faults" in joined
