"""Shared fixtures: paper examples, small databases, deterministic RNG."""

from __future__ import annotations

import random

import pytest

from repro.datalog import parse_program
from repro.facts import Database
from repro.workloads import (example_2_1, example_3_2, example_4_1,
                             example_4_3, example_5_1)


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def tc_program():
    """The canonical left-linear transitive closure."""
    return parse_program("""
        r0: reach(X, Y) :- edge(X, Y).
        r1: reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """)


@pytest.fixture
def chain_db():
    """a -> b -> c -> d."""
    return Database.from_text("""
        edge(a, b).
        edge(b, c).
        edge(c, d).
    """)


@pytest.fixture
def diamond_db():
    """a -> {b, c} -> d (two paths of equal length)."""
    return Database.from_text("""
        edge(a, b).
        edge(a, c).
        edge(b, d).
        edge(c, d).
    """)


@pytest.fixture
def ex21():
    return example_2_1()


@pytest.fixture
def ex32():
    return example_3_2()


@pytest.fixture
def ex41():
    return example_4_1()


@pytest.fixture
def ex43():
    return example_4_3()


@pytest.fixture
def ex51():
    return example_5_1()


def tc_closure(edges: set[tuple[str, str]]) -> frozenset[tuple[str, str]]:
    """Reference transitive closure for cross-checking engines."""
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return frozenset(closure)
