"""Unit tests for rectification and structural analysis."""

import pytest

from repro.datalog import parse_program, parse_rule
from repro.datalog.analysis import (bound_variables, is_range_restricted,
                                    is_safe, validate_program)
from repro.datalog.rectify import (head_variable, is_rectified,
                                   rectify_program, rectify_rule)
from repro.datalog.terms import Variable
from repro.engine import evaluate
from repro.facts import Database


class TestIsRectified:
    def test_distinct_variables(self):
        assert is_rectified(parse_rule("p(X, Y) :- e(X, Y)."))

    def test_repeated_variable(self):
        assert not is_rectified(parse_rule("p(X, X) :- e(X)."))

    def test_constant_in_head(self):
        assert not is_rectified(parse_rule("p(X, a) :- e(X)."))


class TestRectifyRule:
    def test_repeated_variable_moves_to_equality(self):
        rectified = rectify_rule(parse_rule("p(X, X) :- e(X)."))
        assert is_rectified(rectified)
        equalities = rectified.evaluable_atoms()
        assert len(equalities) == 1 and equalities[0].op == "="

    def test_constant_moves_to_equality(self):
        rectified = rectify_rule(parse_rule("p(X, 5) :- e(X)."))
        assert is_rectified(rectified)

    def test_canonical_head_names(self):
        rectified = rectify_rule(parse_rule("p(A, B) :- e(A, B)."),
                                 canonical=True)
        assert rectified.head.args == (Variable("X1"), Variable("X2"))

    def test_canonical_swap_is_simultaneous(self):
        rectified = rectify_rule(parse_rule("p(X2, X1) :- e(X2, X1)."),
                                 canonical=True)
        assert rectified.head.args == (Variable("X1"), Variable("X2"))
        # body must follow the same renaming
        assert rectified.body[0].args == (Variable("X1"), Variable("X2"))

    def test_semantics_preserved(self):
        original = parse_program("p(X, X, a) :- e(X).")
        rectified = rectify_program(original)
        db = Database.from_text("e(u). e(v).")
        assert evaluate(original, db).facts("p") == \
            evaluate(rectified, db).facts("p")

    def test_head_variable_helper(self):
        assert head_variable(0) == Variable("X1")


class TestRangeRestriction:
    def test_restricted(self):
        assert is_range_restricted(parse_rule("p(X) :- e(X, Y)."))

    def test_unrestricted(self):
        assert not is_range_restricted(parse_rule("p(X, Z) :- e(X, Y)."))


class TestSafety:
    def test_simple_safe(self):
        assert is_safe(parse_rule("p(X) :- e(X, Y), X > Y."))

    def test_unbound_comparison_unsafe(self):
        assert not is_safe(parse_rule("p(X) :- e(X), X > Z."))

    def test_equality_binds(self):
        assert is_safe(parse_rule("p(X, Y) :- e(X), Y = X + 1."))

    def test_equality_chain_binds(self):
        rule = parse_rule("p(A) :- e(X), Y = X, A = Y.")
        assert bound_variables(rule) >= {Variable("A"), Variable("Y")}

    def test_negation_needs_bound_vars(self):
        assert is_safe(parse_rule("p(X) :- e(X), not q(X)."))
        assert not is_safe(parse_rule("p(X) :- e(X), not q(X, Z)."))

    def test_head_var_only_in_negation_unsafe(self):
        assert not is_safe(parse_rule("p(Z) :- e(X), not q(Z)."))


class TestBoundVariablesCompoundEqualities:
    """``=`` with a compound side must bind the bare-variable side in
    either orientation, exactly as the planner's ``can_bind`` does."""

    def test_compound_on_left_binds_right(self):
        rule = parse_rule("p(Y) :- q(X), X + 1 = Y.")
        assert Variable("Y") in bound_variables(rule)
        assert is_safe(rule)

    def test_compound_on_right_binds_left(self):
        rule = parse_rule("p(Y) :- q(X), Y = X + 1.")
        assert Variable("Y") in bound_variables(rule)
        assert is_safe(rule)

    def test_chain_through_compounds(self):
        rule = parse_rule("p(B) :- q(X), X * 2 = A, A - 1 = B.")
        assert bound_variables(rule) >= {Variable("A"), Variable("B")}
        assert is_safe(rule)

    def test_chain_order_independent(self):
        rule = parse_rule("p(B) :- A - 1 = B, q(X), X * 2 = A.")
        assert bound_variables(rule) >= {Variable("A"), Variable("B")}

    def test_compound_with_unbound_source_does_not_bind(self):
        rule = parse_rule("p(Y) :- q(X), Z + 1 = Y.")
        bound = bound_variables(rule)
        assert Variable("Y") not in bound and Variable("Z") not in bound
        assert not is_safe(rule)

    def test_compound_both_sides_never_binds(self):
        # No bare variable side: the engine cannot invert X + 1 = Y - 1.
        rule = parse_rule("p(X, Y) :- q(X), X + 1 = Y - 1.")
        assert Variable("Y") not in bound_variables(rule)
        assert not is_safe(rule)

    def test_ground_compound_binds(self):
        rule = parse_rule("p(X, Y) :- q(X), Y = 2 + 3.")
        assert Variable("Y") in bound_variables(rule)

    def test_parity_with_planner_can_bind(self):
        from repro.engine import builtins

        rule = parse_rule("p(Y) :- q(X), X + 1 = Y.")
        eq = rule.evaluable_atoms()[0]
        assert builtins.can_bind(eq, {Variable("X")})
        assert Variable("Y") in bound_variables(rule)


class TestValidateProgram:
    def test_clean_program(self, tc_program):
        report = validate_program(tc_program)
        assert report.ok and report.ok_for_paper
        assert "satisfies" in report.summary()

    def test_flags_collected(self):
        program = parse_program("""
            bad1(X, Z) :- e(X).
            bad2(X) :- e(X), f(Y).
            t(X, Y) :- g(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
        """)
        report = validate_program(program)
        assert not report.ok
        assert report.unrestricted_rules
        assert report.disconnected_rules
        assert "t" in report.nonlinear_predicates
        assert "non-linear" in report.summary()
