"""Unit tests for classical and free subsumption (paper Section 2).

The key fixtures are the paper's own Examples 2.1 and 3.2, whose
residues are stated explicitly in the text.
"""

import pytest

from repro.constraints import (expand, extend_to_useful,
                               free_subsumptions, freely_subsumes,
                               ic_from_text, is_useful,
                               maximal_free_subsumptions,
                               partial_subsumptions, rule_residues,
                               subsumes, subsumptions)
from repro.constraints.subsumption import match_literal, rename_ic_apart
from repro.datalog import parse_rule
from repro.datalog.atoms import atom, comparison
from repro.datalog.unify import EMPTY_SUBSTITUTION
from repro.core.sequences import unfold


class TestClauseSubsumption:
    def test_subset_subsumes(self):
        pattern = (atom("a", "X", "Y"),)
        target = (atom("a", "u", "v"), atom("b", "v"))
        assert subsumes(pattern, target) is not None

    def test_shared_variables_respected(self):
        pattern = (atom("a", "X", "Y"), atom("b", "Y", "Z"))
        good = (atom("a", "u", "v"), atom("b", "v", "w"))
        bad = (atom("a", "u", "v"), atom("b", "x", "w"))
        assert subsumes(pattern, good) is not None
        assert subsumes(pattern, bad) is None

    def test_two_pattern_atoms_may_share_a_target(self):
        pattern = (atom("a", "X", "Y"), atom("a", "Y", "X"))
        target = (atom("a", "u", "u"),)
        assert subsumes(pattern, target) is not None

    def test_enumerates_all(self):
        pattern = (atom("a", "X"),)
        target = (atom("a", "u"), atom("a", "v"))
        assert len(list(subsumptions(pattern, target))) == 2


class TestMatchLiteral:
    def test_comparison_same_op(self):
        results = list(match_literal(comparison("X", "<", "Y"),
                                     comparison("A", "<", "B"),
                                     EMPTY_SUBSTITUTION))
        assert len(results) == 1

    def test_comparison_converse(self):
        results = list(match_literal(comparison("X", "<", "Y"),
                                     comparison("B", ">", "A"),
                                     EMPTY_SUBSTITUTION))
        assert len(results) == 1

    def test_comparison_mismatch(self):
        assert not list(match_literal(comparison("X", "<", "Y"),
                                      comparison("A", "<=", "B"),
                                      EMPTY_SUBSTITUTION))

    def test_atom_vs_comparison(self):
        assert not list(match_literal(atom("p", "X"),
                                      comparison("X", "=", 1),
                                      EMPTY_SUBSTITUTION))


class TestRenameApart:
    def test_colliding_variables_renamed(self):
        ic = ic_from_text("a(X, Y) -> b(Y).")
        clause = (atom("c", "X"),)
        renamed = rename_ic_apart(ic, clause)
        assert "X" not in {v.name for v in renamed.variables()}

    def test_no_collision_no_change(self):
        ic = ic_from_text("a(P, Q) -> b(Q).")
        clause = (atom("c", "X"),)
        assert rename_ic_apart(ic, clause) == ic


class TestPartialSubsumptionExample21(object):
    """Example 2.1: the classical residue via the expanded form."""

    def test_residue(self, ex21):
        r0 = ex21.program.rule("r0")
        ic = ex21.ic("ic")
        residues = rule_residues(ic, r0.body)
        # The paper: X2' = X2, X3' = X3 -> d(X5, X6) (modulo names).
        full = [r for r in residues if len(r.body) == 2
                and r.head is not None and r.head.pred == "d"]
        assert full, [str(r) for r in residues]
        residue = full[0]
        assert all(lit.op == "=" for lit in residue.body)
        # Equality-bodied: evaluable-only, hence "free" in Def 4.1 terms.
        assert residue.is_free and residue.is_conditional

    def test_no_subsumption_no_residue(self):
        ic = ic_from_text("zzz(X) -> w(X).")
        rule = parse_rule("p(X) :- a(X).")
        assert rule_residues(ic, rule.body) == []


class TestFreeSubsumptionExample21:
    """Example 2.1's two free residues, verbatim."""

    def test_both_partial_free_residues(self, ex21):
        r0 = ex21.program.rule("r0")
        ic = ex21.ic("ic")
        residues = {str(fs.residue)
                    for fs in free_subsumptions(ic, r0.body)}
        # b matched: residue a(...), c(...) -> d(...)
        assert any("a(" in r and "c(" in r for r in residues)
        # a and c matched: residue b(...) -> d(...)
        assert any(r.startswith("b(") for r in residues)

    def test_no_maximal_on_single_r0(self, ex21):
        r0 = ex21.program.rule("r0")
        assert not freely_subsumes(ex21.ic("ic"), r0.body)

    def test_maximal_on_unfolded_r0r0r0(self, ex21):
        clause = unfold(ex21.program, "p", ("r0", "r0", "r0"))
        items = list(maximal_free_subsumptions(ex21.ic("ic"),
                                               clause.literals()))
        assert items
        residue = items[0].residue
        assert residue.body == ()  # unconditional
        assert residue.head is not None and residue.head.pred == "d"


class TestUsefulness:
    def test_trivially_useful_null_residue(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1", "r1", "r1"))
        items = list(maximal_free_subsumptions(ex43.ic("ic1"),
                                               clause.literals()))
        assert items
        extended = extend_to_useful(items[0].residue, clause.literals())
        assert extended is not None  # null residues are trivially useful

    def test_strict_extension_needs_the_fourth_instance(self, ex21):
        """The head only lands strictly on ``r0^4`` (the paper's own
        Example 3.1 display indeed shows four rule instances)."""
        ic = ex21.ic("ic")
        short = unfold(ex21.program, "p", ("r0", "r0", "r0"))
        short_items = list(maximal_free_subsumptions(
            ic, short.literals()))
        assert all(extend_to_useful(item.residue, short.literals(),
                                    strict=True) is None
                   for item in short_items)

        long = unfold(ex21.program, "p", ("r0", "r0", "r0", "r0"))
        long_items = list(maximal_free_subsumptions(ic, long.literals()))
        stricts = [extend_to_useful(item.residue, long.literals(),
                                    strict=True) for item in long_items]
        landed = [s for s in stricts if s is not None]
        assert landed
        # The extension maps V7 to the level-0 output variable X6.
        assert str(landed[0].head) == "d(Y5, X6)"
        assert any(item.literal == landed[0].head for item in long.body)

    def test_loose_extension_example_3_2(self, ex32):
        clause = unfold(ex32.program, "eval", ("r1", "r1"))
        items = list(maximal_free_subsumptions(ex32.ic("ic1"),
                                               clause.literals()))
        residue = items[0].residue
        assert extend_to_useful(residue, clause.literals(),
                                strict=True) is None
        loose = extend_to_useful(residue, clause.literals(), strict=False)
        assert loose is not None
        assert str(loose.head) == "expert(P, F)"  # the paper's reading

    def test_is_useful_wrapper(self, ex32):
        clause = unfold(ex32.program, "eval", ("r1", "r1"))
        items = list(maximal_free_subsumptions(ex32.ic("ic1"),
                                               clause.literals()))
        assert not is_useful(items[0].residue, clause.literals(),
                             strict=True)
        assert is_useful(items[0].residue, clause.literals(), strict=False)


class TestResidueClassification:
    def test_kinds(self, ex41, ex43):
        conditional_fact = rule_residues(
            ex41.ic("ic1"), ex41.program.rule("r2").body)[0]
        assert conditional_fact.kind == "conditional fact"
        clause = unfold(ex43.program, "anc", ("r1", "r1", "r1"))
        null = list(maximal_free_subsumptions(
            ex43.ic("ic1"), clause.literals()))[0].residue
        assert null.kind == "conditional null"
        assert null.is_null and not null.is_fact

    def test_simplified_drops_trivial_equalities(self):
        from repro.constraints import Residue
        from repro.datalog.unify import Substitution
        residue = Residue((comparison("X", "=", "X"),
                           comparison("X", ">", 1),
                           comparison("X", ">", 1)),
                          atom("p", "X"), Substitution())
        simplified = residue.simplified()
        assert simplified.body == (comparison("X", ">", 1),)

    def test_tautology(self):
        from repro.constraints import Residue
        from repro.datalog.unify import Substitution
        residue = Residue((atom("p", "X"),), atom("p", "X"),
                          Substitution())
        assert residue.is_tautology
