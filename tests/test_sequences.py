"""Unit tests for expansion sequences and unfolding."""

import pytest

from repro.core.sequences import enumerate_sequences, unfold
from repro.datalog import parse_program
from repro.errors import TransformError


class TestUnfold:
    def test_single_rule(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1",))
        assert clause.head.pred == "anc"
        assert len(clause.body) == 2
        assert clause.recursive_tail is not None
        assert clause.body[clause.recursive_tail].literal.pred == "anc"

    def test_two_levels_share_variables(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1", "r1"))
        pars = [item.literal for item in clause.body
                if item.literal.pred == "par"]
        assert len(pars) == 2
        level0, level1 = pars
        # Level-0's par reads the recursion's intermediate variables,
        # which level-1 binds.
        shared = level0.variable_set() & level1.variable_set()
        assert shared

    def test_provenance_levels_and_indexes(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1", "r1", "r0"))
        levels = sorted({item.level for item in clause.body})
        assert levels == [0, 1, 2]
        for item in clause.body:
            original = ex43.program.rule(clause.labels[item.level])
            original_lit = original.body[item.body_index]
            assert getattr(original_lit, "pred", None) == \
                getattr(item.literal, "pred", None)

    def test_exit_terminated_has_no_tail(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1", "r0"))
        assert clause.recursive_tail is None
        assert len(clause.literals()) == 2

    def test_literals_can_exclude_tail(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1", "r1"))
        assert len(clause.literals()) == 3
        assert len(clause.literals(include_tail=False)) == 2

    def test_locals_renamed_apart(self, ex21):
        clause = unfold(ex21.program, "p", ("r0", "r0"))
        all_vars = [v for item in clause.body
                    for v in item.literal.variables()]
        # b's first argument differs between levels.
        bs = [item.literal for item in clause.body
              if item.literal.pred == "b"]
        assert bs[0].args[0] != bs[1].args[0]
        assert len(all_vars) > 0

    def test_instance_heads_chain(self, ex43):
        clause = unfold(ex43.program, "anc", ("r1", "r1"))
        inst0, inst1 = clause.instances
        rec_call = [lit for lit in inst0.body if lit.pred == "anc"][0]
        assert inst1.head == rec_call

    def test_str(self, ex43):
        text = str(unfold(ex43.program, "anc", ("r1", "r0")))
        assert text.startswith("anc(") and ":-" in text


class TestUnfoldErrors:
    def test_empty_sequence(self, ex43):
        with pytest.raises(TransformError):
            unfold(ex43.program, "anc", ())

    def test_exit_rule_must_be_last(self, ex43):
        with pytest.raises(TransformError):
            unfold(ex43.program, "anc", ("r0", "r1"))

    def test_wrong_predicate(self, ex43):
        with pytest.raises(TransformError):
            unfold(ex43.program, "par", ("r1",))

    def test_nonlinear_rule_rejected(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- t(X, Z), t(Z, Y).")
        with pytest.raises(TransformError):
            unfold(program, "t", ("r1", "r1"))


class TestEnumerateSequences:
    def test_lengths_and_shapes(self, ex43):
        sequences = list(enumerate_sequences(ex43.program, "anc", 2))
        assert ("r1",) in sequences
        assert ("r0",) in sequences
        assert ("r1", "r1") in sequences
        assert ("r1", "r0") in sequences
        assert ("r0", "r1") not in sequences  # exit rule terminates

    def test_exit_exclusion(self, ex43):
        sequences = list(enumerate_sequences(ex43.program, "anc", 2,
                                             include_exit=False))
        assert all("r0" not in seq for seq in sequences)

    def test_all_unfold(self, ex43):
        for sequence in enumerate_sequences(ex43.program, "anc", 3):
            unfold(ex43.program, "anc", sequence)  # must not raise
