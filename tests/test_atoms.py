"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import (Atom, Comparison, Negation, atom,
                                 comparison, constants_of, is_database,
                                 is_evaluable, literal_variables)
from repro.datalog.terms import ArithExpr, Constant, Variable


class TestAtom:
    def test_str(self):
        assert str(atom("par", "X", "alice")) == "par(X, alice)"

    def test_zero_arity(self):
        assert str(Atom("halt", ())) == "halt"

    def test_variables_with_repeats(self):
        a = atom("t", "X", "Y", "X")
        assert list(a.variables()) == [Variable("X"), Variable("Y"),
                                       Variable("X")]
        assert a.variable_set() == {Variable("X"), Variable("Y")}

    def test_arity(self):
        assert atom("p", "X", "Y").arity == 2


class TestComparison:
    def test_str(self):
        assert str(comparison("X", ">", 100)) == "X > 100"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            comparison("X", "~", 1)

    @pytest.mark.parametrize("op,complement", [
        ("=", "!="), ("!=", "="), ("<", ">="), (">=", "<"),
        (">", "<="), ("<=", ">"),
    ])
    def test_complement(self, op, complement):
        c = comparison("X", op, "Y")
        assert c.complement().op == complement
        assert c.complement().complement() == c

    @pytest.mark.parametrize("op,converse", [
        ("=", "="), ("!=", "!="), ("<", ">"), (">", "<"),
        ("<=", ">="), (">=", "<="),
    ])
    def test_converse_swaps_operands(self, op, converse):
        c = comparison("X", op, "Y")
        swapped = c.converse()
        assert swapped.op == converse
        assert swapped.lhs == c.rhs and swapped.rhs == c.lhs

    def test_variables_include_arithmetic(self):
        c = Comparison(">", ArithExpr("+", Variable("A"), Constant(1)),
                       Variable("B"))
        assert c.variable_set() == {Variable("A"), Variable("B")}


class TestNegation:
    def test_str(self):
        assert str(Negation(atom("p", "X"))) == "not p(X)"

    def test_variables(self):
        assert Negation(atom("p", "X", "Y")).variable_set() == \
            {Variable("X"), Variable("Y")}


class TestHelpers:
    def test_is_database(self):
        assert is_database(atom("p", "X"))
        assert not is_database(comparison("X", "=", 1))

    def test_is_evaluable(self):
        assert is_evaluable(comparison("X", "=", 1))
        assert not is_evaluable(atom("p", "X"))
        assert not is_evaluable(Negation(atom("p", "X")))

    def test_literal_variables(self):
        lits = (atom("p", "X", "Y"), comparison("Y", "<", "Z"))
        assert literal_variables(lits) == {Variable("X"), Variable("Y"),
                                           Variable("Z")}

    def test_constants_of_atom(self):
        assert constants_of(atom("p", "X", "alice", 3)) == \
            {Constant("alice"), Constant(3)}

    def test_constants_of_comparison_with_arith(self):
        c = Comparison("<", ArithExpr("+", Variable("X"), Constant(5)),
                       Constant(10))
        assert constants_of(c) == {Constant(5), Constant(10)}

    def test_constants_of_negation(self):
        assert constants_of(Negation(atom("p", "a"))) == {Constant("a")}
