"""Tests for the interactive shell (scripted)."""

import pytest

from repro.shell import Shell, run

PROGRAM_LINES = [
    "r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).",
    "r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).",
    "par(cal, 7, bob, 30).",
    "par(bob, 30, ann, 72).",
]

IC_LINE = ("ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za), "
           "par(Z3, Z3a, Z2, Z2a) -> .")


def script(*lines):
    return run(list(PROGRAM_LINES) + list(lines))


class TestStatements:
    def test_rules_and_facts_acknowledged(self):
        out = run(PROGRAM_LINES)
        assert sum("rule added" in line for line in out) == 2
        assert sum("fact stored" in line for line in out) == 2

    def test_query(self):
        out = script("?- anc(cal, Xa, Y, Ya).")
        assert "2 answer(s)." in out
        assert any("ann" in line for line in out)

    def test_query_no_answers(self):
        out = script("?- anc(ann, Xa, Y, Ya).")
        assert "no." in out

    def test_multi_line_statement_buffered(self):
        out = run(["p(X) :-", "  q(X),", "  r(X)."])
        assert any("rule added" in line for line in out)

    def test_parse_error_reported(self):
        out = run(["p(X :- q(X)."])
        assert any(line.startswith("error:") for line in out)

    def test_ic_registered(self):
        out = script(IC_LINE)
        assert any("ic registered" in line for line in out)


class TestMetaCommands:
    def test_program_listing(self):
        out = script(".program")
        assert any("anc(X, Xa, Y, Ya) :- par" in line for line in out)

    def test_empty_program(self):
        assert "(no rules)" in run([".program"])

    def test_facts_listing(self):
        out = script(".facts par")
        assert any("par(cal, 7, bob, 30)." in line for line in out)

    def test_validate(self):
        out = script(".validate")
        assert any("satisfies all assumptions" in line for line in out)

    def test_unknown_command(self):
        out = run([".bogus"])
        assert any("unknown command" in line for line in out)

    def test_help(self):
        out = run([".help"])
        assert any(".optimize" in line for line in out)

    def test_reset(self):
        shell = Shell()
        list(shell.handle(PROGRAM_LINES[0]))
        list(shell.handle(".reset"))
        assert "(no rules)" in list(shell.handle(".program"))

    def test_load_file(self, tmp_path):
        path = tmp_path / "prog.dl"
        path.write_text("\n".join(PROGRAM_LINES))
        out = run([f".load {path}", ".program"])
        assert any("anc" in line for line in out)

    def test_csv(self, tmp_path):
        path = tmp_path / "edge.csv"
        path.write_text("a,b\n")
        out = run([f".csv edge {path}", ".facts edge"])
        assert "1 fact(s) loaded into edge" in out
        assert "edge(a, b)." in out


class TestLintCommand:
    def test_clean_program(self):
        out = script(".lint")
        assert any("no findings" in line for line in out)

    def test_colon_alias(self):
        out = script(":lint")
        assert any("no findings" in line for line in out)

    def test_findings_reported_with_codes(self):
        out = run(["p(X, Y) :- q(X).", ".lint"])
        assert any("RR001" in line for line in out)
        assert any("error" in line for line in out)

    def test_ics_included(self):
        out = run(PROGRAM_LINES + [IC_LINE.replace("par(Z, Za", "anc(Z, Za"),
                                   ".lint"])
        assert any("IC001" in line for line in out)

    def test_query_argument_drives_reachability(self):
        out = run(["p(X) :- e(X).", "stray(X) :- f(X).", ".lint p(X)"])
        assert any("DEAD001" in line for line in out)

    def test_last_query_reused(self):
        out = run(["p(X) :- e(X).", "stray(X) :- f(X).", "e(a).",
                   "?- p(X).", ".lint"])
        assert any("DEAD001" in line for line in out)


class TestOptimizeFlow:
    def test_residues_listed(self):
        out = script(IC_LINE, ".residues")
        assert any("Ya <= 50 ->" in line for line in out)

    def test_optimize_switches_program(self):
        out = script(IC_LINE, ".optimize", ".program")
        assert any("switched to the optimized" in line for line in out)
        assert any("anc__deep" in line for line in out)

    def test_answers_stable_after_optimize(self):
        before = script("?- anc(cal, Xa, Y, Ya).")
        after = script(IC_LINE, ".optimize", "?- anc(cal, Xa, Y, Ya).")
        assert [l for l in before if l.startswith("  ")] == \
            [l for l in after if l.startswith("  ")]

    def test_original_reverts(self):
        out = script(IC_LINE, ".optimize", ".original", ".program")
        assert any("using the original program" in line for line in out)
        assert not any("anc__deep" in line
                       for line in out[out.index(
                           "using the original program"):])

    def test_adding_rule_invalidates_optimized(self):
        out = script(IC_LINE, ".optimize",
                     "other(X) :- par(X, A, B, C).", ".program")
        # The listing reverted to the (extended) original program.
        assert not any("anc__deep" in line
                       for line in out[-10:])

    def test_optimize_without_ics(self):
        out = script(".optimize")
        assert any("no integrity constraints" in line for line in out)


class TestExplainAndDescribe:
    def test_explain(self):
        out = script(".explain anc(cal, 7, ann, 72)")
        assert any("[r1]" in line for line in out)
        assert any("[edb]" in line for line in out)

    def test_explain_underivable(self):
        out = script(".explain anc(ann, 72, cal, 7)")
        assert any("not derivable" in line for line in out)

    def test_describe(self):
        out = run([
            "h(S) :- grad(S, C), topten(C).",
            ".describe h(S) where grad(S, C), topten(C)",
        ])
        assert any("every object satisfying the context" in line
                   for line in out)

    def test_quit_stops_processing(self):
        out = run([".quit", ".program"])
        assert out == []
