"""Chaos tests: every fallback path of the resilience layer must fire.

The fault-injection harness (:mod:`repro.runtime.chaos`) makes named
optimizer stages or the Nth engine derivation raise or stall on cue;
these tests prove that `optimize_safe()` degrades exactly as designed
and that engine faults surface as typed errors, not hangs.
"""

import pytest

from repro import (Budget, BudgetExceededError, Database, ChaosPlan,
                   SemanticOptimizer, evaluate, ics_from_text,
                   parse_program)
from repro.core.equivalence import infer_numeric_columns
from repro.datalog import parse_atom
from repro.runtime import ChaosError, active_plan
from repro.runtime.chaos import checkpoint

PROGRAM = """
r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
"""

ICS = """
ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
     par(Z3, Z3a, Z2, Z2a) -> .
"""


@pytest.fixture
def program():
    return parse_program(PROGRAM)


@pytest.fixture
def ics():
    return ics_from_text(ICS)


def par_db(n: int = 12) -> Database:
    db = Database()
    db.ensure("par", 4)
    for i in range(n):
        db.add_fact("par", f"p{i}", 20 + i, f"p{i + 1}", 21 + i)
    return db


class TestChaosPlan:
    def test_inactive_by_default(self):
        assert active_plan() is None
        checkpoint("anything")  # no-op without an active plan

    def test_stage_fault_fires_only_inside_block(self):
        plan = ChaosPlan().fail_stage("s1")
        with plan.active():
            with pytest.raises(ChaosError):
                checkpoint("s1")
            checkpoint("other")  # unscheduled stages pass through
        checkpoint("s1")  # deactivated again
        assert plan.triggered == [("stage", "s1")]

    def test_custom_exception(self):
        plan = ChaosPlan().fail_stage("s1", ValueError("boom"))
        with plan.active(), pytest.raises(ValueError):
            checkpoint("s1")

    def test_derivation_ordinals_are_one_based(self):
        with pytest.raises(ValueError):
            ChaosPlan().fail_derivation(0)


class TestEngineChaos:
    def test_nth_derivation_fault_seminaive(self, program):
        plan = ChaosPlan().fail_derivation(5)
        with plan.active(), pytest.raises(ChaosError):
            evaluate(program, par_db())
        assert plan.triggered == [("derivation", 5)]

    def test_nth_derivation_fault_naive(self, program):
        plan = ChaosPlan().fail_derivation(3)
        with plan.active(), pytest.raises(ChaosError):
            evaluate(program, par_db(), method="naive")

    def test_nth_derivation_fault_topdown(self):
        from repro import topdown_query
        reach = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """)
        db = Database()
        db.ensure("edge", 2)
        for i in range(10):
            db.add_fact("edge", f"n{i}", f"n{i + 1}")
        plan = ChaosPlan().fail_derivation(4)
        with plan.active(), pytest.raises(ChaosError):
            topdown_query(reach, db, parse_atom('reach("n0", Y)'))

    def test_stall_plus_deadline_terminates(self, program):
        """A stalled derivation trips the deadline at the next check."""
        plan = ChaosPlan().fail_derivation(3, stall_s=0.05)
        budget = Budget(timeout_s=0.01, deadline_check_interval=1)
        with plan.active(), pytest.raises(BudgetExceededError) as info:
            evaluate(program, par_db(), budget=budget)
        assert info.value.resource == "deadline"


class TestOptimizeSafeDegradation:
    def test_no_faults_matches_optimize(self, program, ics):
        safe = SemanticOptimizer(program, ics).optimize_safe()
        plain = SemanticOptimizer(program, ics).optimize()
        assert str(safe.optimized) == str(plain.optimized)
        assert not safe.failures and not safe.degraded
        assert safe.changed

    def test_residue_stage_fault_degrades_per_ic(self, program, ics):
        plan = ChaosPlan().fail_stage("residues")
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe()
        # The stage failure is recorded, but the per-IC retry recovers
        # every residue, so the optimization still lands.
        assert [f.stage for f in report.failures] == ["residues"]
        assert report.changed
        plain = SemanticOptimizer(program, ics).optimize()
        assert str(report.optimized) == str(plain.optimized)

    def test_single_bad_ic_dropped_others_survive(self, program, ics):
        plan = ChaosPlan().fail_stage("residues")
        plan.fail_stage("residues:ic1", RuntimeError("ic1 is cursed"))
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe()
        assert report.optimized is program  # only IC was dropped
        dropped = [f for f in report.failures
                   if f.stage == "residues:ic1"]
        assert dropped and dropped[0].dropped == ("ic1",)
        assert dropped[0].error_type == "RuntimeError"

    def test_periodic_stage_fault_falls_through_to_phase2(
            self, program, ics):
        plan = ChaosPlan().fail_stage("periodic:anc/r1")
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe()
        assert any(f.stage == "periodic:anc/r1" for f in report.failures)
        # Phase 2 still pushes the residues the periodic path dropped.
        assert report.changed

    def test_push_stage_fault_drops_group_only(self, program, ics):
        plan = ChaosPlan().fail_stage("periodic:anc/r1")
        plan.fail_stage("push:anc/r1 r1 r1", RuntimeError("push died"))
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe()
        assert any(f.stage == "push:anc/r1 r1 r1"
                   for f in report.failures)
        # Everything failed, so the sound fallback is the original.
        for step in report.steps:
            assert not step.outcome.applied \
                or step.outcome.program is not None

    def test_every_stage_failing_returns_original(self, program, ics):
        plan = ChaosPlan()
        for stage in ("residues", "residues:ic1", "periodic:anc/r1",
                      "push:anc/r1 r1 r1", "push:anc/r1 r1 r0",
                      "collapse"):
            plan.fail_stage(stage)
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe()
        assert report.optimized is program
        assert report.degraded and not report.changed
        # The degraded program still evaluates correctly.
        result = evaluate(report.optimized, par_db())
        assert result.count("anc") > 0

    def test_budget_expiry_degrades_instead_of_raising(self, program,
                                                       ics):
        budget = Budget(timeout_s=0.0, deadline_check_interval=1)
        report = SemanticOptimizer(program, ics).optimize_safe(
            budget=budget)
        assert report.degraded
        assert any(f.error_type == "BudgetExceededError"
                   for f in report.failures)
        # Sound output even under a zero budget.
        assert evaluate(report.optimized, par_db()).count("anc") > 0

    def test_cancellation_degrades_gracefully(self, program, ics):
        budget = Budget()
        budget.cancel()
        report = SemanticOptimizer(program, ics).optimize_safe(
            budget=budget)
        assert report.optimized is program
        assert any(f.error_type == "EvaluationCancelledError"
                   for f in report.failures)

    def test_summary_mentions_degradation(self, program, ics):
        plan = ChaosPlan().fail_stage("residues")
        plan.fail_stage("residues:ic1")
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe()
        text = report.summary()
        assert "degraded" in text and "residues:ic1" in text


class TestSampledVerification:
    def test_passes_on_sound_optimization(self, program, ics):
        report = SemanticOptimizer(program, ics).optimize_safe(
            verify="sample")
        assert report.verification == "passed"
        assert not report.quarantined

    def test_skipped_when_nothing_applied(self, program):
        report = SemanticOptimizer(program, []).optimize_safe(
            verify="sample")
        assert report.verification == "skipped"

    def test_rejects_unknown_mode(self, program, ics):
        with pytest.raises(ValueError):
            SemanticOptimizer(program, ics).optimize_safe(verify="full")

    def test_quarantines_unsound_stage_output(self, program, ics):
        """A buggy stage whose output drops answers must be caught by
        the spot-check and quarantined back to the source program."""

        class BuggyOptimizer(SemanticOptimizer):
            def _collapse_stage(self, current, preserved):
                collapsed = super()._collapse_stage(current, preserved)
                # Simulate a miscompiled stage: silently lose the rule
                # publishing depth-1 answers into anc.
                from repro.datalog.program import Program
                return Program(
                    [r for r in collapsed if r.label != "anc_from_d0"],
                    edb_hint=tuple(collapsed.edb_predicates))

        report = BuggyOptimizer(program, ics).optimize_safe(
            verify="sample")
        assert report.verification == "mismatch"
        assert report.quarantined
        assert report.optimized is program
        assert "suspect steps" in report.verification_detail
        assert not report.changed

    def test_verification_error_keeps_optimization(self, program, ics):
        plan = ChaosPlan().fail_stage("verify")
        with plan.active():
            report = SemanticOptimizer(program, ics).optimize_safe(
                verify="sample")
        assert report.verification == "error"
        assert not report.quarantined
        assert report.changed  # guard-validated edits are kept


class TestNumericColumnInference:
    def test_infers_from_ics_and_rules(self, program, ics):
        columns = infer_numeric_columns(program, ics)
        # ic1 compares Ya <= 50; Ya sits in columns 3 (and via the chain
        # variables Za/Z2a, columns 1) of par.
        assert 3 in columns["par"]

    def test_no_comparisons_no_columns(self):
        reach = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """)
        assert infer_numeric_columns(reach, []) == {}
