"""Unit tests for evaluable-predicate semantics."""

import pytest

from repro.datalog.atoms import comparison
from repro.datalog.parser import parse_literal
from repro.datalog.terms import Variable
from repro.engine import builtins
from repro.errors import EvaluationError

X, Y = Variable("X"), Variable("Y")


class TestEvalTerm:
    def test_constant(self):
        assert builtins.eval_term(parse_literal("X = 3").rhs, {}) == 3

    def test_variable_lookup(self):
        assert builtins.eval_term(X, {X: 7}) == 7

    def test_unbound_raises(self):
        with pytest.raises(EvaluationError):
            builtins.eval_term(X, {})

    def test_arithmetic(self):
        expr = parse_literal("Y = X + 2 * 3").rhs
        assert builtins.eval_term(expr, {X: 1}) == 7

    def test_division(self):
        expr = parse_literal("Y = X / 4").rhs
        assert builtins.eval_term(expr, {X: 10}) == 2.5

    def test_division_by_zero(self):
        expr = parse_literal("Y = X / 0").rhs
        with pytest.raises(EvaluationError):
            builtins.eval_term(expr, {X: 1})

    def test_arithmetic_on_strings_rejected(self):
        expr = parse_literal("Y = X + 1").rhs
        with pytest.raises(EvaluationError):
            builtins.eval_term(expr, {X: "oops"})


class TestHolds:
    @pytest.mark.parametrize("text,binding,expected", [
        ("X = 3", {X: 3}, True),
        ("X = 3", {X: 4}, False),
        ("X != Y", {X: 1, Y: 2}, True),
        ("X < Y", {X: 1, Y: 2}, True),
        ("X >= Y", {X: 2, Y: 2}, True),
        ("X > Y + 1", {X: 3, Y: 1}, True),
        ("X > Y + 1", {X: 2, Y: 1}, False),
    ])
    def test_numeric(self, text, binding, expected):
        assert builtins.holds(parse_literal(text), binding) is expected

    def test_string_ordering(self):
        assert builtins.holds(comparison("X", "<", "Y"),
                              {X: "apple", Y: "banana"})

    def test_equality_across_types(self):
        assert not builtins.holds(comparison("X", "=", "Y"), {X: 1, Y: "1"})

    def test_ordering_across_types_rejected(self):
        with pytest.raises(EvaluationError):
            builtins.holds(comparison("X", "<", "Y"), {X: 1, Y: "a"})


class TestSolve:
    def test_check_passes_binding_through(self):
        binding = {X: 5}
        assert builtins.solve(parse_literal("X > 1"), binding) is binding

    def test_check_fails(self):
        assert builtins.solve(parse_literal("X > 9"), {X: 5}) is None

    def test_equality_binds_lhs(self):
        result = builtins.solve(parse_literal("Y = X + 1"), {X: 2})
        assert result is not None and result[Y] == 3

    def test_equality_binds_rhs(self):
        result = builtins.solve(comparison("X", "=", "Y"), {X: 2})
        assert result is not None and result[Y] == 2

    def test_undecidable_raises(self):
        with pytest.raises(EvaluationError):
            builtins.solve(parse_literal("X > Y"), {X: 1})

    def test_original_binding_not_mutated(self):
        binding = {X: 2}
        builtins.solve(comparison("Y", "=", "X"), binding)
        assert Y not in binding


class TestPlannerHelpers:
    def test_can_check(self):
        c = parse_literal("X > Y")
        assert builtins.can_check(c, {X, Y})
        assert not builtins.can_check(c, {X})

    def test_can_bind_equality_only(self):
        assert builtins.can_bind(comparison("Y", "=", "X"), {X})
        assert not builtins.can_bind(comparison("Y", ">", "X"), {X})
        assert not builtins.can_bind(comparison("Y", "=", "X"), set())

    def test_can_bind_through_arith(self):
        c = parse_literal("Y = X + 1")
        assert builtins.can_bind(c, {X})
        assert not builtins.can_bind(c, set())
