"""End-to-end workflow over CSV data files.

Generates a genealogy EDB, round-trips it through ``<pred>.csv`` files
(the shape real data arrives in), then runs the full pipeline — optimize,
evaluate, explain — over the loaded database.  Demonstrates
:mod:`repro.facts.io` and the why-provenance API.
"""

import random
import tempfile
from pathlib import Path

from repro import SemanticOptimizer, evaluate
from repro.datalog import atom
from repro.engine import explain
from repro.facts import load_directory, save_directory
from repro.workloads import (GenealogyParams, example_4_3,
                             generate_genealogy)


def main() -> None:
    example = example_4_3()
    generated = generate_genealogy(
        GenealogyParams(generations=5, width=6), random.Random(11))

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = Path(tmp) / "genealogy"
        rows = save_directory(generated, data_dir)
        print(f"wrote {rows} facts to {data_dir}/par.csv")
        print("first lines:")
        for line in (data_dir / "par.csv").read_text().splitlines()[:3]:
            print("   ", line)
        print()

        db = load_directory(data_dir)
        assert db == generated
        print(f"reloaded {db.total_facts()} facts; "
              "round trip is lossless")
        print()

        report = SemanticOptimizer(example.program,
                                   list(example.ics)).optimize()
        result = evaluate(report.optimized, db)
        print(f"{result.count('anc')} ancestor tuples derived by the "
              "optimized program")

        # Explain the deepest derivation found.
        deepest = None
        for row in result.facts("anc"):
            derivation = explain(report.optimized, db,
                                 atom("anc", *row), idb=result.idb)
            if derivation is not None and (
                    deepest is None
                    or derivation.depth() > deepest.depth()):
                deepest = derivation
        assert deepest is not None
        print()
        print(f"deepest derivation (depth {deepest.depth()}):")
        print(deepest.render())


if __name__ == "__main__":
    main()
