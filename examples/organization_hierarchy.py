"""The organizational-hierarchy walkthrough (Example 4.1).

This example exercises the hardest push in the paper: the conditional
fact residue ``R = executive -> experienced(U)`` whose *condition* (the
rank test) lives three recursion levels below the *eliminable atom*.
The usefulness search extends the sequence to ``r2 r2 r2 r2`` — the
detection the paper defers to its tech report — and the push threads the
condition's verdict through the rule chain so the elimination only fires
when the deep rank test succeeded.
"""

import random

from repro import SemanticOptimizer, evaluate, format_program
from repro.core import generate_residues
from repro.workloads import (OrganizationParams, example_4_1,
                             generate_organization)


def main() -> None:
    example = example_4_1()
    program = example.program
    ic1 = example.ic("ic1")

    print("program")
    print("-" * 60)
    print(format_program(program))
    print()
    print("integrity constraint:", ic1)
    print()

    print("Algorithm 3.1 + usefulness-driven sequence extension")
    print("-" * 60)
    for item in generate_residues(program, "triple", ic1):
        print(" ", item)
    print()

    report = SemanticOptimizer(program, [ic1], pred="triple",
                               compilation="automaton").optimize()
    print("optimization report (automaton form, threaded condition)")
    print("-" * 60)
    print(report.summary())
    print()
    print("optimized program")
    print("-" * 60)
    print(format_program(report.optimized, group_by_head=True))
    print()

    db = generate_organization(
        OrganizationParams(levels=6, width=10, executive_fraction=0.5),
        random.Random(2))
    plain = evaluate(program, db)
    pushed = evaluate(report.optimized, db)
    assert plain.facts("triple") == pushed.facts("triple")
    print(f"identical answers: {plain.count('triple')} triples on "
          f"{db.total_facts()} EDB facts")
    print(f"plain rows matched:  {plain.stats.rows_matched}")
    print(f"pushed rows matched: {pushed.stats.rows_matched}")


if __name__ == "__main__":
    main()
