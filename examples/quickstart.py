"""Quickstart: optimize a recursive query with an integrity constraint.

Run with::

    python examples/quickstart.py

The program computes ancestors with ages; the integrity constraint says
nobody of 50 or younger has three generations of descendants.  The
optimizer detects that the constraint maximally subsumes the expansion
sequence ``r1 r1 r1``, derives the null residue ``Ya <= 50 ->`` and
pushes it inside the recursion as a guard — at compile time, with no
run-time residue checking.
"""

import random

from repro import (Database, SemanticOptimizer, evaluate, format_program,
                   ics_from_text, parse_program)
from repro.workloads import GenealogyParams, generate_genealogy

PROGRAM = """
r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
"""

CONSTRAINTS = """
ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
     par(Z3, Z3a, Z2, Z2a) -> .
"""


def main() -> None:
    program = parse_program(PROGRAM)
    ics = ics_from_text(CONSTRAINTS)

    print("original program")
    print("-" * 40)
    print(format_program(program))
    print()

    optimizer = SemanticOptimizer(program, ics)
    report = optimizer.optimize()
    print("optimization report")
    print("-" * 40)
    print(report.summary())
    print()
    print("optimized program")
    print("-" * 40)
    print(format_program(report.optimized, group_by_head=True))
    print()

    # Evaluate both on a generated family tree and compare.
    db = generate_genealogy(GenealogyParams(generations=6, width=10),
                            random.Random(0))
    plain = evaluate(program, db)
    pushed = evaluate(report.optimized, db)
    assert plain.facts("anc") == pushed.facts("anc"), \
        "semantic optimization must preserve answers"
    print(f"both programs derive {plain.count('anc')} anc tuples "
          f"on {db.total_facts()} EDB facts")
    print(f"plain:  {plain.stats.atom_lookups} lookups, "
          f"{plain.stats.rows_matched} rows matched")
    print(f"pushed: {pushed.stats.atom_lookups} lookups, "
          f"{pushed.stats.rows_matched} rows matched")

    # Conjunctive queries work over the result.
    young = plain.query("anc(X, Xa, Y, Ya), Ya <= 50")
    print(f"{len(young)} ancestor pairs have a young ancestor "
          "(depth <= 2, as the constraint demands)")


if __name__ == "__main__":
    main()
