"""The university evaluation-committee walkthrough (Examples 3.2 / 4.2).

Shows the full pipeline on the paper's flagship example:

1. Algorithm 3.1 finds that ``ic1`` (expertise propagates along
   collaboration) maximally subsumes the expansion sequence ``r1 r1``
   and yields the unconditional fact residue ``-> expert(P, F)``;
2. the residue is pushed as *atom elimination* — the redundant
   ``expert`` join disappears from every recursion level past the
   first;
3. ``ic2`` (only doctoral students get > 10,000) attaches to the
   non-recursive ``r2`` and is pushed as *atom introduction* of the
   small ``doctoral`` reducer;
4. both programs are evaluated and compared on a generated university.
"""

import random

from repro import SemanticOptimizer, evaluate, format_program
from repro.core import generate_residues, rule_level_residues
from repro.workloads import (UniversityParams, example_3_2,
                             generate_university)


def main() -> None:
    example = example_3_2()
    program, ics = example.program, list(example.ics)
    ic1, ic2 = example.ic("ic1"), example.ic("ic2")

    print("program")
    print("-" * 60)
    print(format_program(program))
    print()
    print("integrity constraints")
    print("-" * 60)
    for ic in ics:
        print(ic)
    print()

    print("Algorithm 3.1: residues of ic1 w.r.t. the program")
    print("-" * 60)
    for item in generate_residues(program, "eval", ic1):
        print(" ", item)
    print()
    print("rule-level residues of ic2 (attaches to the non-recursive r2)")
    print("-" * 60)
    for item in rule_level_residues(program, ic2):
        print(" ", item)
    print()

    optimizer = SemanticOptimizer(program, ics, pred="eval",
                                  small_relations={"doctoral"})
    report = optimizer.optimize()
    print("optimization report")
    print("-" * 60)
    print(report.summary())
    print()
    print("optimized program")
    print("-" * 60)
    print(format_program(report.optimized, group_by_head=True))
    print()

    params = UniversityParams(professors=40, students=10, theses=10,
                              fields=12, fields_per_thesis=6,
                              expert_seed_fraction=0.7,
                              works_with_density=0.04)
    db = generate_university(params, random.Random(1))
    plain = evaluate(program, db)
    pushed = evaluate(report.optimized, db)
    for pred in ("eval", "eval_support"):
        assert plain.facts(pred) == pushed.facts(pred), pred
    print(f"identical answers: {plain.count('eval')} eval tuples, "
          f"{plain.count('eval_support')} eval_support tuples")
    saving = 1 - pushed.stats.rows_matched / plain.stats.rows_matched
    print(f"matched rows: {plain.stats.rows_matched} -> "
          f"{pushed.stats.rows_matched}  ({saving:.1%} saved by "
          "eliminating the redundant expert join)")


if __name__ == "__main__":
    main()
