"""Genealogy subtree pruning vs run-time residue checking (Example 4.3).

Contrasts the two paradigms the paper compares:

- **transformation** (this paper): the null residue ``Ya <= 50 ->`` is
  pushed into the program once, at compile time;
- **evaluation-based** ([3], [9]): residues are kept aside and checked
  against every candidate derivation during bottom-up evaluation — the
  ``residue_checks`` counter shows the recurring cost.

Both return exactly the answers plain evaluation returns (the database
satisfies the constraint), which is the point: semantic optimization
trades *where* the constraint knowledge is paid for, not what is
computed.
"""

import random

from repro import ResidueGuidedEngine, SemanticOptimizer, evaluate
from repro.datalog import format_program
from repro.workloads import (GenealogyParams, example_4_3,
                             generate_genealogy)


def main() -> None:
    example = example_4_3()
    program = example.program
    ic1 = example.ic("ic1")
    print("program")
    print("-" * 60)
    print(format_program(program))
    print()
    print("integrity constraint:", ic1)
    print()

    report = SemanticOptimizer(program, [ic1], pred="anc").optimize()
    print(report.summary())
    print()
    print("optimized program (depth-class compilation)")
    print("-" * 60)
    print(format_program(report.optimized, group_by_head=True))
    print()

    guided = ResidueGuidedEngine(program, [ic1], pred="anc")
    print(f"guided engine attached {guided.attached_guards} "
          "run-time guard(s) to rule r1")
    print()

    db = generate_genealogy(
        GenealogyParams(generations=7, width=12, young_fraction=0.7),
        random.Random(3))
    plain = evaluate(program, db)
    pushed = evaluate(report.optimized, db)
    checked = guided.evaluate(db)
    assert plain.facts("anc") == pushed.facts("anc") \
        == checked.facts("anc")
    print(f"all three engines agree on {plain.count('anc')} anc tuples")
    print(f"plain:   {plain.stats.rows_matched} rows, "
          f"{plain.stats.residue_checks} residue checks")
    print(f"pushed:  {pushed.stats.rows_matched} rows, "
          f"{pushed.stats.residue_checks} residue checks  "
          "(the constraint lives in the program now)")
    print(f"guided:  {checked.stats.rows_matched} rows, "
          f"{checked.stats.residue_checks} residue checks  "
          "(paid again on every evaluation)")


if __name__ == "__main__":
    main()
