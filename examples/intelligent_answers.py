"""Intelligent query answering (Section 5, Example 5.1).

``describe honors(Stud) where ...`` does not ask for tuples: it asks
what can be *said* about honors students given a context.  The pipeline
reuses the semantic-optimization machinery: reachability analysis drops
the irrelevant context (the chess hobby), and subsuming the rest against
the query's proof trees turns residues into descriptions — an empty
residue means the context alone guarantees membership.
"""

from repro import describe, parse_describe
from repro.iqa import proof_trees, reachable_predicates
from repro.workloads import example_5_1


def main() -> None:
    example = example_5_1()
    program = example.program
    print("deductive database")
    print("-" * 60)
    print(program)
    print()

    query = parse_describe(
        "describe honors(Stud) where major(Stud, cs), "
        "graduated(Stud, College), topten(College), hobby(Stud, chess)")
    print("knowledge query:", query)
    print()

    reachable = reachable_predicates(program, "honors")
    print("predicates reachable from honors:", ", ".join(sorted(reachable)))
    print()

    print("proof trees of honors(Stud)")
    print("-" * 60)
    for tree in proof_trees(program, query.target):
        print(" ", tree)
    print()

    result = describe(program, query)
    print("intelligent answer")
    print("-" * 60)
    print(result.summary())
    print()

    # A second query whose context does NOT suffice.
    partial = parse_describe(
        "describe honors(Stud) where transcript(Stud, Major, Cred, Gpa), "
        "Gpa >= 3.8")
    print("second knowledge query:", partial)
    print(describe(program, partial).summary())


if __name__ == "__main__":
    main()
