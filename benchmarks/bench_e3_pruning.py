"""E3 — subtree pruning (Example 4.3's genealogy).

Regenerates the E3 table (plain vs pushed vs residue-guided over
recursion depth) and benchmarks the three engines.
"""

import random

import pytest

from repro import ResidueGuidedEngine, SemanticOptimizer, evaluate
from repro.bench.experiments import experiment_e3
from repro.workloads import (GenealogyParams, example_4_3,
                             generate_genealogy)


@pytest.fixture(scope="module")
def workload():
    example = example_4_3()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="anc").optimize().optimized
    guided = ResidueGuidedEngine(example.program, [ic1], pred="anc")
    db = generate_genealogy(GenealogyParams(generations=7, width=12),
                            random.Random(17))
    return example.program, optimized, guided, db


def test_e3_table(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: experiment_e3(generations=(5, 7), repeats=2),
        rounds=1, iterations=1)
    record_table(table)


def test_e3_bench_plain(benchmark, workload):
    plain, _, _, db = workload
    result = benchmark(lambda: evaluate(plain, db))
    assert result.count("anc") > 0


def test_e3_bench_pushed(benchmark, workload):
    plain, optimized, _, db = workload
    result = benchmark(lambda: evaluate(optimized, db))
    assert result.facts("anc") == evaluate(plain, db).facts("anc")
    assert result.stats.residue_checks == 0


def test_e3_bench_guided(benchmark, workload):
    plain, _, guided, db = workload
    result = benchmark(lambda: guided.evaluate(db))
    assert result.facts("anc") == evaluate(plain, db).facts("anc")
    assert result.stats.residue_checks > 0
