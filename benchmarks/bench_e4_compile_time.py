"""E4 — compile-time cost of residue generation.

Regenerates the E4 table (Algorithm 3.1's SD-graph detection vs the
exhaustive sequence enumerator over IC chain length) and benchmarks both
methods on the length-4 chain.
"""

import pytest

from repro.bench.experiments import _chain_ic_text, experiment_e4
from repro.constraints import ics_from_text
from repro.core import generate_residues, generate_residues_exhaustive
from repro.workloads import example_4_3


@pytest.fixture(scope="module")
def workload():
    example = example_4_3()
    ic = ics_from_text(_chain_ic_text(4))[0]
    return example.program, ic


def test_e4_table(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: experiment_e4(lengths=(2, 3, 4), repeats=2),
        rounds=1, iterations=1)
    record_table(table)


def test_e4_bench_graph_method(benchmark, workload):
    program, ic = workload
    items = benchmark(
        lambda: generate_residues(program, "anc", ic, max_extend=0))
    assert items


def test_e4_bench_exhaustive_method(benchmark, workload):
    program, ic = workload
    items = benchmark(
        lambda: generate_residues_exhaustive(program, "anc", ic,
                                             max_length=5))
    assert items
