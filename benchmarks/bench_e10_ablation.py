"""E10 — ablation of the design choices on the elimination workload.

Regenerates the E10 table (per-configuration compile time and evaluation
work) and benchmarks the two compile pipelines.
"""

import pytest

from repro import SemanticOptimizer
from repro.bench.experiments import experiment_e10
from repro.core.minimize import minimize_program
from repro.workloads import example_3_2


def test_e10_table(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: experiment_e10(size=30, repeats=1),
        rounds=1, iterations=1)
    record_table(table)
    by_name = {row[0]: row for row in table.rows}
    plain = by_name["plain (no optimization)"]
    default = by_name["periodic + chase guard (default)"]
    # The default configuration must actually reduce the work.
    assert float(default[3].rstrip("%")) < float(plain[3].rstrip("%"))


def test_e10_bench_compile_guarded(benchmark):
    example = example_3_2()
    report = benchmark(lambda: SemanticOptimizer(
        example.program, [example.ic("ic1")], pred="eval").optimize())
    assert report.changed


def test_e10_bench_minimize(benchmark):
    example = example_3_2()
    report = benchmark(lambda: minimize_program(
        example.program, [example.ic("ic1")]))
    assert not report.changed  # the redundancy is cross-instance
