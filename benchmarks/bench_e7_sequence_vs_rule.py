"""E7 — sequence-level vs rule-level residue discovery.

Regenerates the E7 table (what each method finds on the paper's
examples) and benchmarks residue generation on Example 2.1, whose IC is
invisible below the ``r0 r0 r0`` sequence.
"""

import pytest

from repro.bench.experiments import experiment_e7
from repro.core import generate_residues, rule_level_residues
from repro.workloads import example_2_1


@pytest.fixture(scope="module")
def workload():
    example = example_2_1()
    return example.program, example.ic("ic")


def test_e7_table(benchmark, record_table):
    table = benchmark.pedantic(experiment_e7, rounds=1, iterations=1)
    record_table(table)


def test_e7_bench_sequence_level(benchmark, workload):
    program, ic = workload
    items = benchmark(lambda: generate_residues(program, "p", ic))
    assert any(item.sequence == ("r0", "r0", "r0") for item in items)


def test_e7_bench_rule_level(benchmark, workload):
    program, ic = workload
    items = benchmark(lambda: rule_level_residues(program, ic))
    # The rule-level reading finds nothing pushable here.
    assert all(len(item.sequence) == 1 for item in items)
