"""E5 — run-time overhead: compile once vs check every query.

Regenerates the E5 amortization table and benchmarks the compile step
itself (the one-off cost the transformation approach pays).
"""

import pytest

from repro import ResidueGuidedEngine, SemanticOptimizer
from repro.bench.experiments import experiment_e5
from repro.workloads import example_3_2, example_4_3


def test_e5_table(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: experiment_e5(query_counts=(1, 5, 10)),
        rounds=1, iterations=1)
    record_table(table)


def test_e5_bench_compile_elimination(benchmark):
    example = example_3_2()
    ic1 = example.ic("ic1")
    report = benchmark(lambda: SemanticOptimizer(
        example.program, [ic1], pred="eval").optimize())
    assert report.changed


def test_e5_bench_attach_guided(benchmark):
    example = example_4_3()
    ic1 = example.ic("ic1")
    engine = benchmark(lambda: ResidueGuidedEngine(
        example.program, [ic1], pred="anc"))
    assert engine.attached_guards > 0
