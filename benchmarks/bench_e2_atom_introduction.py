"""E2 — atom introduction (Example 4.2's doctoral semijoin reducer).

Regenerates the E2 table (source-order vs greedy planner) and benchmarks
the introduced program under the fixed source join order, where the
reducer pays off.
"""

import random

import pytest

from repro import SemanticOptimizer, evaluate, ics_from_text
from repro.bench.experiments import experiment_e2
from repro.constraints import repair
from repro.workloads import (UniversityParams, example_3_2,
                             generate_university)


@pytest.fixture(scope="module")
def workload():
    example = example_3_2()
    ic2u = ics_from_text("ic2u: pays(M, G, S, T) -> doctoral(S).")[0]
    optimized = SemanticOptimizer(
        example.program, [ic2u], pred="eval",
        small_relations={"doctoral"}).optimize().optimized
    params = UniversityParams(professors=30, students=15, theses=15,
                              supervisions=30, payments=15,
                              doctoral_fraction=0.05)
    db = generate_university(params, random.Random(13))
    repair(db, ic2u)
    return example.program, optimized, db


def test_e2_table(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: experiment_e2(sizes=(20, 40), repeats=2),
        rounds=1, iterations=1)
    record_table(table)


def test_e2_bench_plain_source_order(benchmark, workload):
    plain, _, db = workload
    result = benchmark(lambda: evaluate(plain, db, planner="source"))
    assert result.count("eval_support") > 0


def test_e2_bench_introduced_source_order(benchmark, workload):
    plain, optimized, db = workload
    result = benchmark(lambda: evaluate(optimized, db, planner="source"))
    assert result.facts("eval_support") == \
        evaluate(plain, db).facts("eval_support")
