"""E8 — intelligent query answering (Section 5, Example 5.1).

Regenerates the E8 table (per-proof-tree residues for the honors query)
and benchmarks the describe() pipeline.
"""

import pytest

from repro import describe, parse_describe
from repro.bench.experiments import experiment_e8
from repro.workloads import example_5_1


@pytest.fixture(scope="module")
def workload():
    example = example_5_1()
    query = parse_describe(
        "describe honors(Stud) where major(Stud, cs), "
        "graduated(Stud, College), topten(College), hobby(Stud, chess)")
    return example.program, query


def test_e8_table(benchmark, record_table):
    table = benchmark.pedantic(experiment_e8, rounds=1, iterations=1)
    record_table(table)


def test_e8_bench_describe(benchmark, workload):
    program, query = workload
    result = benchmark(lambda: describe(program, query))
    assert result.context_suffices
