"""E9 — pruning under tabled top-down evaluation.

Regenerates the E9 table (bound young/old ancestor queries, plain vs
pruned) and benchmarks both programs on a young-ancestor query — the
setting where the pushed guard refutes the deep recursion before its
subgoals are ever called.
"""

import random

import pytest

from repro import SemanticOptimizer, topdown_query
from repro.bench.experiments import experiment_e9
from repro.datalog import atom
from repro.workloads import (GenealogyParams, example_4_3,
                             generate_genealogy)


@pytest.fixture(scope="module")
def workload():
    example = example_4_3()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="anc").optimize().optimized
    db = generate_genealogy(
        GenealogyParams(generations=7, width=12, young_fraction=0.7),
        random.Random(31))
    young = sorted({(y, ya) for (_, _, y, ya) in db.facts("par")
                    if ya <= 50})[0]
    goal = atom("anc", "X", "Xa", young[0], young[1])
    return example.program, optimized, db, goal


def test_e9_table(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: experiment_e9(generations=(6,), queries_per_db=4),
        rounds=1, iterations=1)
    record_table(table)


def test_e9_bench_plain_topdown(benchmark, workload):
    plain, _, db, goal = workload
    result = benchmark(lambda: topdown_query(plain, db, goal))
    assert result.stats.rows_matched > 0


def test_e9_bench_pruned_topdown(benchmark, workload):
    plain, optimized, db, goal = workload
    pruned = benchmark(lambda: topdown_query(optimized, db, goal))
    assert pruned.project(goal) == \
        topdown_query(plain, db, goal).project(goal)
