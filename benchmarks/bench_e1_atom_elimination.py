"""E1 — atom elimination (Example 3.2's redundant expert join).

Regenerates the E1 table (plain vs pushed vs automaton ablation vs
rule-level baseline over EDB size) and benchmarks the pushed program's
evaluation against plain.
"""

import random

import pytest

from repro import SemanticOptimizer, evaluate
from repro.bench.experiments import _e1_params, experiment_e1
from repro.workloads import example_3_2, generate_university


@pytest.fixture(scope="module")
def workload():
    example = example_3_2()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="eval").optimize().optimized
    db = generate_university(_e1_params(30), random.Random(11))
    return example.program, optimized, db


def test_e1_table(benchmark, record_table):
    # pedantic with a single round: the experiment sweeps sizes itself.
    table = benchmark.pedantic(
        lambda: experiment_e1(sizes=(20, 40), repeats=2),
        rounds=1, iterations=1)
    record_table(table)


def test_e1_bench_plain(benchmark, workload):
    plain, _, db = workload
    result = benchmark(lambda: evaluate(plain, db))
    assert result.count("eval") > 0


def test_e1_bench_pushed(benchmark, workload):
    plain, optimized, db = workload
    result = benchmark(lambda: evaluate(optimized, db))
    assert result.facts("eval") == evaluate(plain, db).facts("eval")
