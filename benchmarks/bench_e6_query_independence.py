"""E6 — query independence: the optimization composes with magic sets.

Regenerates the E6 table (row savings under free and bound binding
patterns) and benchmarks magic-rewritten evaluation of the pushed
program.
"""

import random

import pytest

from repro import SemanticOptimizer, evaluate_with_magic, magic_answers
from repro.bench.experiments import _e1_params, experiment_e6
from repro.datalog import atom
from repro.workloads import example_3_2, generate_university


@pytest.fixture(scope="module")
def workload():
    example = example_3_2()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="eval").optimize().optimized
    db = generate_university(_e1_params(30), random.Random(29))
    return example.program, optimized, db


def test_e6_table(benchmark, record_table):
    table = benchmark.pedantic(lambda: experiment_e6(repeats=2),
                               rounds=1, iterations=1)
    record_table(table)


def test_e6_bench_magic_on_plain(benchmark, workload):
    plain, _, db = workload
    query = atom("eval", "p0", "S", "T")
    result = benchmark(lambda: evaluate_with_magic(plain, db, query))
    assert result.magic is not None


def test_e6_bench_magic_on_pushed(benchmark, workload):
    plain, optimized, db = workload
    query = atom("eval", "p0", "S", "T")
    benchmark(lambda: evaluate_with_magic(optimized, db, query))
    # The adorned relations differ structurally (different demanded
    # sets); the *query answers* must agree.
    assert magic_answers(optimized, db, query) == \
        magic_answers(plain, db, query)
