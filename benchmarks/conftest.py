"""Shared benchmark fixtures.

Each ``bench_e*.py`` runs one reproduction experiment (see DESIGN.md
section 4): it times the key operation with pytest-benchmark and records
the experiment's result table, which is printed in the terminal summary
so ``pytest benchmarks/ --benchmark-only`` leaves the reproduced tables
in the log.
"""

from __future__ import annotations

import pytest

_TABLES: list = []


@pytest.fixture
def record_table():
    """Record an experiment table for the terminal summary."""

    def _record(table) -> None:
        _TABLES.append(table)
        # Fail loudly if any engine disagreed on answers.
        for row in table.rows:
            assert "NO" not in [str(c) for c in row], \
                f"answer mismatch in {table.title}: {row}"

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduction experiment tables")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()
